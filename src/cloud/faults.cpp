#include "cloud/faults.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pregel::cloud {

namespace {

constexpr double u01(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

void check_rate(double rate, const char* name) {
  if (rate < 0.0 || rate >= 1.0)
    throw std::logic_error(std::string("FaultPlan: ") + name + " must be in [0, 1)");
}

}  // namespace

void FaultPlan::validate() const {
  check_rate(queue_op_failure_rate, "queue_op_failure_rate");
  check_rate(blob_read_failure_rate, "blob_read_failure_rate");
  check_rate(blob_write_failure_rate, "blob_write_failure_rate");
  check_rate(blob_corruption_rate, "blob_corruption_rate");
  check_rate(queue_corruption_rate, "queue_corruption_rate");
  check_rate(ckpt_torn_write_rate, "ckpt_torn_write_rate");
  check_rate(ckpt_rot_rate, "ckpt_rot_rate");
  check_rate(vm_preemption_rate, "vm_preemption_rate");
  check_rate(manager_preemption_rate, "manager_preemption_rate");
  check_rate(zone_outage_rate, "zone_outage_rate");
  check_rate(queue_duplicate_rate, "queue_duplicate_rate");
  check_rate(straggler_rate, "straggler_rate");
  if (straggler_slowdown < 1.0)
    throw std::logic_error("FaultPlan: straggler_slowdown must be >= 1");
}

void RetryPolicy::validate() const {
  if (max_attempts == 0) throw std::logic_error("RetryPolicy: max_attempts must be >= 1");
  if (base_backoff <= 0.0 || max_backoff < base_backoff)
    throw std::logic_error("RetryPolicy: need 0 < base_backoff <= max_backoff");
  if (op_deadline <= 0.0) throw std::logic_error("RetryPolicy: op_deadline must be > 0");
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) { plan_.validate(); }

double FaultInjector::rate_of(FaultKind kind) const noexcept {
  switch (kind) {
    case FaultKind::kQueueOp: return plan_.queue_op_failure_rate;
    case FaultKind::kBlobRead: return plan_.blob_read_failure_rate;
    case FaultKind::kBlobWrite: return plan_.blob_write_failure_rate;
    case FaultKind::kBlobCorrupt: return plan_.blob_corruption_rate;
    case FaultKind::kQueueCorrupt: return plan_.queue_corruption_rate;
    case FaultKind::kCkptTornWrite: return plan_.ckpt_torn_write_rate;
  }
  return 0.0;
}

double FaultInjector::next_uniform(FaultKind kind) noexcept {
  std::uint64_t* counter = nullptr;
  std::uint64_t seed = 0;
  switch (kind) {
    case FaultKind::kQueueOp:
      counter = &queue_draws_;
      seed = plan_.queue_seed;
      break;
    case FaultKind::kBlobRead:
      counter = &blob_read_draws_;
      seed = plan_.blob_seed;
      break;
    case FaultKind::kBlobWrite:
      counter = &blob_write_draws_;
      seed = plan_.blob_seed ^ 0x5bd1e995ULL;
      break;
    case FaultKind::kBlobCorrupt:
      counter = &blob_corrupt_draws_;
      seed = plan_.corruption_seed;
      break;
    case FaultKind::kQueueCorrupt:
      counter = &queue_corrupt_draws_;
      seed = plan_.queue_corruption_seed;
      break;
    case FaultKind::kCkptTornWrite:
      counter = &ckpt_torn_draws_;
      seed = plan_.ckpt_seed;
      break;
  }
  const std::uint64_t bits = mix64(seed ^ (0x9E3779B97F4A7C15ULL * ++*counter));
  return u01(bits);
}

std::uint64_t FaultInjector::draws(FaultKind kind) const noexcept {
  switch (kind) {
    case FaultKind::kQueueOp: return queue_draws_;
    case FaultKind::kBlobRead: return blob_read_draws_;
    case FaultKind::kBlobWrite: return blob_write_draws_;
    case FaultKind::kBlobCorrupt: return blob_corrupt_draws_;
    case FaultKind::kQueueCorrupt: return queue_corrupt_draws_;
    case FaultKind::kCkptTornWrite: return ckpt_torn_draws_;
  }
  return 0;
}

RetryOutcome FaultInjector::attempt(FaultKind kind, const RetryPolicy& retry,
                                    Seconds attempt_latency) {
  RetryOutcome out;
  const double rate = rate_of(kind);
  // Corruption composes with delivery kinds only: an otherwise-successful
  // blob-read or queue-op attempt additionally draws from its corruption
  // stream, so a zero corruption rate leaves the base stream's draw
  // sequence untouched.
  const double corrupt_rate = kind == FaultKind::kBlobRead ? plan_.blob_corruption_rate
                              : kind == FaultKind::kQueueOp ? plan_.queue_corruption_rate
                                                            : 0.0;
  const FaultKind corrupt_kind = kind == FaultKind::kQueueOp ? FaultKind::kQueueCorrupt
                                                             : FaultKind::kBlobCorrupt;
  if (rate <= 0.0 && corrupt_rate <= 0.0) return out;  // clean first try, nothing charged

  Seconds sleep = retry.base_backoff;
  for (std::uint32_t a = 1; a <= retry.max_attempts; ++a) {
    out.attempts = a;
    bool failed = rate > 0.0 && next_uniform(kind) < rate;
    if (!failed && corrupt_rate > 0.0 &&
        next_uniform(corrupt_kind) < corrupt_rate) {
      failed = true;  // payload delivered but fails checksum verification
      ++out.corruptions;
    }
    if (!failed) {
      out.success = true;
      return out;
    }
    ++out.faults;
    out.extra_latency += attempt_latency;  // the failed call itself
    if (a == retry.max_attempts) break;
    // Decorrelated jitter: next sleep uniform in [base, 3 * previous sleep].
    const double span = std::max(0.0, 3.0 * sleep - retry.base_backoff);
    sleep = std::min(retry.max_backoff,
                     retry.base_backoff + next_uniform(kind) * span);
    // Deadline check happens *before* the sleep is charged: a client never
    // starts a backoff longer than its remaining budget, so the accumulated
    // extra latency can exceed op_deadline by at most one failed attempt —
    // not by a whole max_backoff sleep. (The jitter draw above is consumed
    // either way, keeping the stream position independent of the deadline.)
    if (out.extra_latency + sleep > retry.op_deadline) break;  // deadline blown
    out.extra_latency += sleep;
  }
  out.success = false;
  return out;
}

bool FaultInjector::vm_preempted(std::uint32_t vm, std::uint64_t superstep,
                                 std::uint64_t epoch) const noexcept {
  if (plan_.vm_preemption_rate <= 0.0) return false;
  const std::uint64_t key = mix64(plan_.preemption_seed ^ (superstep * 0x1000193ULL) ^
                                  (static_cast<std::uint64_t>(vm) << 32) ^
                                  (epoch * 0x9E3779B9ULL));
  return u01(key) < plan_.vm_preemption_rate;
}

bool FaultInjector::manager_preempted(std::uint64_t superstep,
                                      std::uint64_t epoch) const noexcept {
  if (plan_.manager_preemption_rate <= 0.0) return false;
  const std::uint64_t key = mix64(plan_.manager_seed ^ (superstep * 0x1000193ULL) ^
                                  (epoch * 0x9E3779B9ULL));
  return u01(key) < plan_.manager_preemption_rate;
}

bool FaultInjector::zone_outage(std::uint32_t zone, std::uint64_t superstep,
                                std::uint64_t epoch) const noexcept {
  if (plan_.zone_outage_rate <= 0.0) return false;
  const std::uint64_t key = mix64(plan_.zone_seed ^ (superstep * 0x1000193ULL) ^
                                  (static_cast<std::uint64_t>(zone) << 32) ^
                                  (epoch * 0x9E3779B9ULL));
  return u01(key) < plan_.zone_outage_rate;
}

bool FaultInjector::next_ckpt_torn() noexcept {
  if (plan_.ckpt_torn_write_rate <= 0.0) return false;
  return next_uniform(FaultKind::kCkptTornWrite) < plan_.ckpt_torn_write_rate;
}

bool FaultInjector::ckpt_rot(std::uint64_t serial, std::uint32_t partition,
                             std::uint32_t copy, std::uint32_t repair_epoch) const noexcept {
  if (plan_.ckpt_rot_rate <= 0.0) return false;
  const std::uint64_t key =
      mix64(plan_.corruption_seed ^ (serial * 0x1000193ULL) ^
            (static_cast<std::uint64_t>(partition) << 32) ^
            (static_cast<std::uint64_t>(copy) << 24) ^
            (static_cast<std::uint64_t>(repair_epoch) * 0x9E3779B9ULL));
  return u01(key) < plan_.ckpt_rot_rate;
}

bool FaultInjector::next_duplicate() noexcept {
  if (plan_.queue_duplicate_rate <= 0.0) return false;
  const std::uint64_t bits =
      mix64(plan_.queue_duplicate_seed ^ (0x9E3779B97F4A7C15ULL * ++duplicate_draws_));
  return u01(bits) < plan_.queue_duplicate_rate;
}

double FaultInjector::straggler_factor(std::uint32_t vm,
                                       std::uint64_t superstep) const noexcept {
  if (plan_.straggler_rate <= 0.0) return 1.0;
  const std::uint64_t key = mix64(plan_.straggler_seed ^ (superstep * 0x85EBCA6BULL) ^
                                  (static_cast<std::uint64_t>(vm) << 32));
  return u01(key) < plan_.straggler_rate ? plan_.straggler_slowdown : 1.0;
}

}  // namespace pregel::cloud
