#include "cloud/queue.hpp"

#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>

#include "runtime/trace.hpp"
#include "util/crc32c.hpp"

namespace pregel::cloud {

namespace {

/// Registry handle cached once; after that an op costs one flag load plus
/// one relaxed atomic add (these run on the control path every superstep).
void count_queue_op() {
  static trace::Counter& ops = trace::Tracer::instance().counter("cloud.queue.ops");
  if (trace::counters_on()) ops.add(1);
}

}  // namespace

std::optional<std::uint64_t> parse_prefixed_count(std::string_view body,
                                                  std::string_view prefix) {
  if (body.size() <= prefix.size() || body.substr(0, prefix.size()) != prefix)
    return std::nullopt;
  const std::string_view digits = body.substr(prefix.size());
  // Canonical decimal only — exactly what std::to_string emits. Hand-rolled
  // instead of from_chars because the underlying conversion is laxer than
  // the protocol: it accepts redundant leading zeros ("active:007"), which
  // would let two distinct bodies decode to the same count and defeat the
  // barrier's dedupe-by-body invariants. Rejected here: empty digits, any
  // non-[0-9] byte (signs, whitespace, embedded NUL, UTF-8 digits), a
  // leading zero on a multi-digit string, and anything past uint64_t's
  // range (checked per digit, so a 100-digit flood can't wrap).
  if (digits.empty()) return std::nullopt;
  if (digits.size() > 1 && digits.front() == '0') return std::nullopt;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - d) / 10) return std::nullopt;  // would overflow
    value = value * 10 + d;
  }
  return value;
}

std::uint32_t queue_body_checksum(std::string_view body) noexcept {
  return util::crc32c(
      std::span(reinterpret_cast<const std::byte*>(body.data()), body.size()));
}

bool verify_queue_message(const QueueMessage& m) noexcept {
  return m.crc == queue_body_checksum(m.body);
}

std::uint64_t AzureQueue::put(std::string body) {
  ++ops_;
  count_queue_op();
  const std::uint64_t id = next_id_++;
  const std::uint32_t crc = queue_body_checksum(body);
  visible_.push_back({id, std::move(body), crc});
  return id;
}

std::optional<QueueMessage> AzureQueue::get() {
  ++ops_;
  count_queue_op();
  if (visible_.empty()) return std::nullopt;
  QueueMessage m = std::move(visible_.front());
  visible_.pop_front();
  const std::uint64_t id = m.id;
  inflight_.emplace(id, m);
  return m;
}

void AzureQueue::remove(std::uint64_t id) {
  ++ops_;
  count_queue_op();
  if (inflight_.erase(id) == 0)
    throw std::logic_error("AzureQueue::remove: message not in flight");
}

void AzureQueue::release(std::uint64_t id) {
  auto it = inflight_.find(id);
  if (it == inflight_.end())
    throw std::logic_error("AzureQueue::release: message not in flight");
  visible_.push_front(std::move(it->second));
  inflight_.erase(it);
}

AzureQueue& QueueService::queue(const std::string& name) { return queues_[name]; }

bool QueueService::has_queue(const std::string& name) const {
  return queues_.contains(name);
}

std::uint64_t QueueService::total_ops() const {
  std::uint64_t total = 0;
  for (const auto& [name, q] : queues_) total += q.total_ops();
  return total;
}

}  // namespace pregel::cloud
