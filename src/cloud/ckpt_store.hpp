// Generational delta-checkpoint store with verified multi-generation
// recovery, background scrub, and retention GC.
//
// The engine's original fault-tolerance design (PR 1/4/6) kept exactly one
// in-memory full Snapshot: every checkpoint round re-uploaded every
// partition's whole state, and one corrupt or torn blob stood between a
// worker failure and job loss. This module replaces that with the blob
// layout a production BSP system would actually write:
//
//  * A *generation* per checkpoint round: one CRC32C-verified data leg per
//    partition, plus a chain-hashed manifest naming the legs. A full *base*
//    generation carries whole-partition state; a *delta* generation carries
//    only state dirtied since the previous generation (sized from modeled
//    per-partition activity), so steady-state checkpoint bytes track the
//    frontier, not the graph.
//  * *Two-phase atomic publish*: data legs first, manifest last. A
//    preemption or torn write during the legs leaves the previous manifest
//    in force; a torn manifest write loses the round, never half of it. No
//    reader can observe a generation whose manifest has not landed.
//  * *Multi-generation fallback restore*: the restore walk starts at the
//    newest published generation and verifies every blob its restore set
//    needs (its base and all intermediate deltas). Torn legs
//    (FaultKind::kCkptTornWrite), at-rest rot (FaultPlan::ckpt_rot_rate on
//    the kBlobCorrupt seed), and corrupt manifests fail verification; the
//    walk falls back to the next older generation — reading cross-zone
//    replica legs where the primary is bad — instead of failing the job.
//    Generation 0 (the input graph in blob storage) is the incorruptible
//    floor: with checkpointing on, recovery always has somewhere to land.
//  * *Scrub*: a modeled background pass between barriers re-verifies every
//    retained copy and re-replicates rotted or torn ones from a surviving
//    copy, bumping the copy's repair epoch so the rewritten blob redraws.
//  * *Retention/GC*: old generations beyond the retention window are
//    deleted (the caller prices one delete op per leg), but never a base or
//    delta a retained generation's restore set still needs. Chain length is
//    bounded by periodic re-basing (CkptOptions::max_chain_length), and a
//    vertex-location-table change (migration, scaling) forces a re-base
//    because per-partition delta domains no longer align with stored legs.
//
// Like the rest of the cloud substrate, everything here is *modeled*: the
// store tracks blob metadata and deterministic fault state while the actual
// recoverable state rides along as an opaque payload owned by the engine.
// All costs are surfaced to the caller in bytes and op counts to be charged
// in modeled time; with all fault rates zero and delta mode at its default,
// a run's values stay bit-identical at any parallelism.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cloud/faults.hpp"
#include "util/units.hpp"

namespace pregel::cloud {

/// Checkpoint-store policy knobs (ClusterConfig::ckpt). The scheduled_*
/// vectors are deterministic test hooks that force a fault at an exact
/// point independent of any rate stream.
struct CkptOptions {
  /// Write delta generations between bases (off = every generation full).
  bool delta_enabled = true;
  /// Deltas allowed on one base before the next round is forced full.
  std::uint32_t max_chain_length = 4;
  /// Published generations kept restorable (generation 0 is always kept).
  /// GC never deletes a generation a retained restore set still needs.
  std::uint32_t retained_generations = 3;
  /// Scrub every N barriers (0 = off): re-verify all retained copies,
  /// re-replicate rotted/torn ones from a surviving copy.
  std::uint32_t scrub_period = 0;

  /// Force a torn data-leg write: (checkpoint round ordinal, partition).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> scheduled_leg_tears;
  /// Force a torn manifest write at these checkpoint round ordinals (the
  /// whole round is lost; the previous generation stays newest).
  std::vector<std::uint64_t> scheduled_manifest_tears;
  /// Force at-rest rot of a primary data leg: (publish serial, partition).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> scheduled_leg_rot;
  /// Force at-rest rot of a manifest: publish serials. A rotted manifest
  /// fails chain verification for itself and every descendant delta.
  std::vector<std::uint64_t> scheduled_manifest_rot;
  /// Force the cross-zone replica round of these checkpoint round ordinals
  /// to be abandoned (the generation publishes unreplicated).
  std::vector<std::uint64_t> scheduled_replica_failures;

  /// Throws std::logic_error on zero retention or zero chain bound.
  void validate() const;
};

/// One partition's data blob within a generation.
struct CkptLeg {
  std::uint32_t partition = 0;
  Bytes bytes = 0;
  std::uint32_t home_vm = 0;      ///< worker that wrote the primary copy
  std::uint32_t home_zone = 0;    ///< zone the primary blob is homed in
  std::uint32_t replica_zone = 0; ///< zone of the cross-zone replica copy
  bool torn = false;              ///< primary landed torn at write time
  bool replica_torn = false;      ///< replica landed torn at write time
  bool rotted = false;            ///< primary rot detected (persists until repaired)
  bool replica_rotted = false;    ///< replica rot detected
  std::uint32_t repairs = 0;          ///< scrub repairs of the primary copy
  std::uint32_t replica_repairs = 0;  ///< scrub repairs of the replica copy
};

/// One published generation: metadata + the opaque engine snapshot that
/// restores it. `seq` is the publish serial (monotonic, never reused even
/// across rollback truncation) and the rot-draw key.
struct CkptGeneration {
  std::uint64_t seq = 0;
  std::uint64_t resume_superstep = 0;
  bool is_base = false;
  std::uint64_t location_version = 0;
  /// mix of the parent's chain hash and this manifest's CRC32C — the
  /// restore walk re-derives it to detect a corrupt mid-chain manifest.
  std::uint64_t chain_hash = 0;
  bool replicated = false;       ///< cross-zone replica round completed
  bool manifest_rotted = false;  ///< manifest rot detected (fails the chain)
  std::uint32_t manifest_repairs = 0;
  std::vector<CkptLeg> legs;
  std::shared_ptr<void> payload;  ///< engine Snapshot (opaque to the store)

  Bytes total_bytes() const noexcept;
  /// CRC32C-trailed manifest text (same idiom as ManagerManifest): the
  /// bytes a real store would publish, exercised for real by the tests.
  std::string manifest_text() const;
};

/// What one checkpoint round did, for the caller to price and count.
struct CkptWriteOutcome {
  bool published = false;   ///< manifest landed; generation is visible
  bool is_base = false;
  Bytes bytes_written = 0;  ///< sum of data-leg bytes
  std::uint32_t torn_legs = 0;        ///< data legs that landed torn
  bool manifest_torn = false;         ///< round lost at the publish step
  std::uint32_t gc_generations = 0;   ///< generations retired by retention GC
  std::uint64_t gc_delete_ops = 0;    ///< blob deletes the caller prices
};

/// The restore the walk settled on. `partition_bytes[p]` is the total
/// restore-set bytes partition p's current owner must download (base leg +
/// every intermediate delta leg). `initial` means the walk fell all the way
/// to generation 0 — the free input-graph restart with no legs to read.
struct CkptRestorePlan {
  std::uint64_t seq = 0;
  std::uint64_t resume_superstep = 0;
  std::uint32_t fallback_depth = 0;   ///< published generations skipped
  std::uint32_t corrupt_legs = 0;     ///< torn/rotted legs hit during the walk
  std::uint32_t corrupt_manifests = 0;
  std::uint32_t replica_reads = 0;    ///< legs readable only via the replica
  bool initial = false;
  std::vector<Bytes> partition_bytes;
  std::shared_ptr<void> payload;
};

/// One scrub pass's findings, for the caller to price and count.
struct CkptScrubOutcome {
  std::uint64_t copies_verified = 0;
  std::uint32_t repairs = 0;       ///< rotted/torn copies re-replicated
  Bytes repaired_bytes = 0;        ///< re-replication transfer to price
  std::uint32_t manifest_repairs = 0;
};

/// The generational checkpoint chain. The engine owns one per job and
/// drives it at barriers; the store owns all blob/fault bookkeeping and the
/// per-generation payload handles. Deterministic by construction: every
/// fault consultation is a seeded stream or keyed draw on the injector.
class CkptStore {
 public:
  /// (Re)configure for a run. Wipes the chain.
  void configure(const CkptOptions& opts, std::uint32_t partitions);
  /// Wipe the chain only (configuration survives).
  void reset();

  /// Install generation 0: the implicit superstep-0 base backed by the
  /// input graph in blob storage. Free, incorruptible, never GC'd. No-op if
  /// a generation 0 already exists.
  void seed_initial(std::shared_ptr<void> payload);

  bool has_checkpoint() const noexcept { return !chain_.empty(); }
  /// Publish serial of the newest visible generation (0 = only gen 0).
  std::uint64_t newest_seq() const noexcept {
    return chain_.empty() ? 0 : chain_.back().seq;
  }
  /// Payload of the newest visible generation (nullptr when empty). The
  /// non-const overload lets the governor's shed rung update the parked
  /// root list inside the snapshot it just restored.
  const void* newest_payload() const noexcept {
    return chain_.empty() ? nullptr : chain_.back().payload.get();
  }
  void* newest_payload() noexcept {
    return chain_.empty() ? nullptr : chain_.back().payload.get();
  }
  /// Resume superstep of the newest visible generation (0 when empty).
  std::uint64_t newest_resume_superstep() const noexcept {
    return chain_.empty() ? 0 : chain_.back().resume_superstep;
  }

  /// Will the next generation be written full (base)? True when the chain
  /// holds no uploaded generation yet, delta mode is off, the chain-length
  /// bound is hit, or the location tables changed since the last
  /// generation (migration-aware delta domains: a moved vertex invalidates
  /// the per-partition dirty alignment, so the store re-bases).
  bool next_is_base(std::uint64_t location_version) const noexcept;

  /// One checkpoint round: stage `leg_bytes` (indexed by partition), draw
  /// torn-write faults per leg, then attempt the atomic manifest publish.
  /// On success the generation becomes visible and retention GC runs; on a
  /// torn manifest nothing becomes visible and the previous generation
  /// stays newest. The caller charges transfer time from the outcome and,
  /// if published, attaches the payload via attach_payload().
  CkptWriteOutcome write_generation(std::uint64_t resume_superstep,
                                    std::uint64_t location_version,
                                    const std::vector<Bytes>& leg_bytes,
                                    const std::vector<std::uint32_t>& home_vm,
                                    const std::vector<std::uint32_t>& home_zone,
                                    std::uint32_t zones, FaultInjector& faults);

  /// Attach the engine snapshot to the generation just published.
  void attach_payload(std::shared_ptr<void> payload);

  /// Mark the newest generation's cross-zone replica round complete (or
  /// abandoned), drawing replica torn-write faults per leg. Returns false
  /// when a scheduled_replica_failures entry forces the round abandoned —
  /// the caller skips the replica transfer charge and counts the failure.
  bool complete_replica_round(FaultInjector& faults);

  /// Walk the manifest chain newest-to-oldest and return the first
  /// generation whose whole restore set verifies — falling back to
  /// generation 0 (initial) if every uploaded generation is bad. With
  /// `lost_zone` set, legs homed in that zone are unreadable at the
  /// primary and only a healthy replica can stand in. Returns nullopt only
  /// when the store is empty.
  std::optional<CkptRestorePlan> plan_restore(std::optional<std::uint32_t> lost_zone,
                                              FaultInjector& faults);

  /// Drop every generation newer than `seq` — called after a rollback
  /// restored `seq`, because the replay re-writes those rounds (the blobs
  /// would be overwritten in place; no delete op is priced).
  void truncate_after(std::uint64_t seq);

  /// Background scrub: verify every retained copy, repair bad ones from a
  /// surviving copy (generation payloads are the in-memory truth, so a
  /// repair is always possible; a fully-rotted leg re-uploads). The caller
  /// prices `repaired_bytes` and counts repairs.
  CkptScrubOutcome scrub(FaultInjector& faults);

  /// Generations currently visible, oldest first (gen 0 included).
  const std::vector<CkptGeneration>& generations() const noexcept { return chain_; }
  std::uint64_t rounds_attempted() const noexcept { return rounds_; }

 private:
  bool leg_scheduled(const std::vector<std::pair<std::uint64_t, std::uint32_t>>& sched,
                     std::uint64_t key, std::uint32_t partition) const noexcept;
  bool seq_scheduled(const std::vector<std::uint64_t>& sched,
                     std::uint64_t key) const noexcept;
  /// Is this copy of the leg readable right now (not torn, not rotted)?
  /// Draws-and-caches the keyed rot state.
  bool copy_ok(const CkptGeneration& gen, CkptLeg& leg, std::uint32_t copy,
               FaultInjector& faults) const;
  /// Indices into chain_ of the restore set of chain_[i]: its base through
  /// itself, oldest first ({i} itself when chain_[i] is a base or gen 0).
  std::vector<std::size_t> restore_set(std::size_t i) const;

  CkptOptions opts_;
  std::uint32_t partitions_ = 0;
  std::vector<CkptGeneration> chain_;  ///< visible generations, oldest first
  std::uint64_t next_seq_ = 1;         ///< publish serials (never reused)
  std::uint64_t rounds_ = 0;           ///< write rounds attempted (tear-hook key)
  std::uint32_t deltas_since_base_ = 0;
};

}  // namespace pregel::cloud
