#include "cloud/ckpt_store.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <stdexcept>

#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace pregel::cloud {

namespace {

std::uint32_t text_crc(const std::string& body) noexcept {
  return util::crc32c(std::as_bytes(std::span(body.data(), body.size())));
}

/// Sentinel partition id for manifest-rot draws (out of any leg's range).
constexpr std::uint32_t kManifestPartition = 0xFFFFFFFFu;
/// Copy ids: 0 = primary leg, 1 = replica leg, 2 = manifest.
constexpr std::uint32_t kManifestCopy = 2;

}  // namespace

void CkptOptions::validate() const {
  if (max_chain_length == 0)
    throw std::logic_error("CkptOptions: max_chain_length must be >= 1");
  if (retained_generations == 0)
    throw std::logic_error("CkptOptions: retained_generations must be >= 1");
}

Bytes CkptGeneration::total_bytes() const noexcept {
  Bytes total = 0;
  for (const CkptLeg& leg : legs) total += leg.bytes;
  return total;
}

std::string CkptGeneration::manifest_text() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "pregel-ckpt-manifest-v1 seq=%llu resume=%llu base=%u locv=%llu "
                "parent=%016llx legs=%zu\n",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(resume_superstep),
                is_base ? 1u : 0u, static_cast<unsigned long long>(location_version),
                static_cast<unsigned long long>(chain_hash), legs.size());
  std::string body = buf;
  for (const CkptLeg& leg : legs) {
    std::snprintf(buf, sizeof buf, "%u %llu %u %u %u\n", leg.partition,
                  static_cast<unsigned long long>(leg.bytes), leg.home_vm,
                  leg.home_zone, leg.replica_zone);
    body += buf;
  }
  return body + "crc=" + std::to_string(text_crc(body)) + "\n";
}

void CkptStore::configure(const CkptOptions& opts, std::uint32_t partitions) {
  opts.validate();
  opts_ = opts;
  partitions_ = partitions;
  reset();
}

void CkptStore::reset() {
  chain_.clear();
  next_seq_ = 1;
  rounds_ = 0;
  deltas_since_base_ = 0;
}

void CkptStore::seed_initial(std::shared_ptr<void> payload) {
  if (!chain_.empty() && chain_.front().seq == 0) return;
  CkptGeneration gen;
  gen.seq = 0;
  gen.resume_superstep = 0;
  gen.is_base = true;
  gen.payload = std::move(payload);
  chain_.insert(chain_.begin(), std::move(gen));
}

bool CkptStore::next_is_base(std::uint64_t location_version) const noexcept {
  if (!opts_.delta_enabled) return true;
  // Find the newest uploaded generation (gen 0 is the input graph, not a
  // delta parent): none yet -> the first upload is the base of the chain.
  if (chain_.empty() || chain_.back().seq == 0) return true;
  const CkptGeneration& newest = chain_.back();
  if (newest.location_version != location_version) return true;  // re-base after moves
  return deltas_since_base_ >= opts_.max_chain_length;
}

bool CkptStore::leg_scheduled(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& sched,
    std::uint64_t key, std::uint32_t partition) const noexcept {
  for (const auto& [k, p] : sched)
    if (k == key && p == partition) return true;
  return false;
}

bool CkptStore::seq_scheduled(const std::vector<std::uint64_t>& sched,
                              std::uint64_t key) const noexcept {
  return std::find(sched.begin(), sched.end(), key) != sched.end();
}

CkptWriteOutcome CkptStore::write_generation(
    std::uint64_t resume_superstep, std::uint64_t location_version,
    const std::vector<Bytes>& leg_bytes, const std::vector<std::uint32_t>& home_vm,
    const std::vector<std::uint32_t>& home_zone, std::uint32_t zones,
    FaultInjector& faults) {
  const std::uint64_t round = rounds_++;
  CkptWriteOutcome out;
  out.is_base = next_is_base(location_version);

  CkptGeneration gen;
  gen.seq = next_seq_++;  // serials are never reused, even for lost rounds
  gen.resume_superstep = resume_superstep;
  gen.is_base = out.is_base;
  gen.location_version = location_version;
  gen.legs.reserve(partitions_);
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    CkptLeg leg;
    leg.partition = p;
    leg.bytes = p < leg_bytes.size() ? leg_bytes[p] : 0;
    leg.home_vm = p < home_vm.size() ? home_vm[p] : 0;
    leg.home_zone = p < home_zone.size() ? home_zone[p] : 0;
    leg.replica_zone = zones > 1 ? (leg.home_zone + 1) % zones : leg.home_zone;
    // Phase one: the data leg upload. A torn ack is invisible now — the
    // client-side CRC goes into the manifest and the mismatch surfaces at
    // the next read of this blob.
    leg.torn = leg_scheduled(opts_.scheduled_leg_tears, round, p) || faults.next_ckpt_torn();
    if (leg.torn) ++out.torn_legs;
    out.bytes_written += leg.bytes;
    gen.legs.push_back(leg);
  }

  // Phase two: the manifest publish — the single atomic step that makes the
  // generation visible. A torn manifest loses the whole round: the previous
  // manifest stays the newest readable one and no half-written generation
  // can ever be observed.
  out.manifest_torn =
      seq_scheduled(opts_.scheduled_manifest_tears, round) || faults.next_ckpt_torn();
  if (out.manifest_torn) return out;

  const std::uint64_t parent_hash = chain_.empty() ? 0 : chain_.back().chain_hash;
  gen.chain_hash =
      mix64(parent_hash ^ (0x9E3779B97F4A7C15ULL *
                           (1 + static_cast<std::uint64_t>(text_crc(gen.manifest_text())))));
  deltas_since_base_ = gen.is_base ? 0 : deltas_since_base_ + 1;
  chain_.push_back(std::move(gen));
  out.published = true;

  // Retention GC: keep the newest `retained_generations` uploaded
  // generations plus everything their restore sets still need (the shared
  // base and intermediate deltas), plus the incorruptible generation 0.
  std::size_t first_real = 0;
  while (first_real < chain_.size() && chain_[first_real].seq == 0) ++first_real;
  const std::size_t real = chain_.size() - first_real;
  if (real > opts_.retained_generations) {
    const std::size_t oldest_kept = chain_.size() - opts_.retained_generations;
    const std::size_t needed_from = restore_set(oldest_kept).front();
    for (std::size_t i = first_real; i < needed_from; ++i) {
      ++out.gc_generations;
      out.gc_delete_ops += chain_[i].legs.size() + 1;  // legs + manifest
      if (chain_[i].replicated) out.gc_delete_ops += chain_[i].legs.size();
    }
    if (needed_from > first_real)
      chain_.erase(chain_.begin() + static_cast<std::ptrdiff_t>(first_real),
                   chain_.begin() + static_cast<std::ptrdiff_t>(needed_from));
  }
  return out;
}

void CkptStore::attach_payload(std::shared_ptr<void> payload) {
  if (!chain_.empty()) chain_.back().payload = std::move(payload);
}

bool CkptStore::complete_replica_round(FaultInjector& faults) {
  if (chain_.empty() || chain_.back().seq == 0) return false;
  if (seq_scheduled(opts_.scheduled_replica_failures, rounds_ - 1)) return false;
  CkptGeneration& gen = chain_.back();
  for (CkptLeg& leg : gen.legs) leg.replica_torn = faults.next_ckpt_torn();
  gen.replicated = true;
  return true;
}

bool CkptStore::copy_ok(const CkptGeneration& gen, CkptLeg& leg, std::uint32_t copy,
                        FaultInjector& faults) const {
  if (copy == 0) {
    if (leg.torn || leg.rotted) return false;
    if ((leg.repairs == 0 &&
         leg_scheduled(opts_.scheduled_leg_rot, gen.seq, leg.partition)) ||
        faults.ckpt_rot(gen.seq, leg.partition, 0, leg.repairs)) {
      leg.rotted = true;
      return false;
    }
    return true;
  }
  if (leg.replica_torn || leg.replica_rotted) return false;
  if (faults.ckpt_rot(gen.seq, leg.partition, 1, leg.replica_repairs)) {
    leg.replica_rotted = true;
    return false;
  }
  return true;
}

std::vector<std::size_t> CkptStore::restore_set(std::size_t i) const {
  std::vector<std::size_t> members;
  std::size_t j = i;
  while (true) {
    members.push_back(j);
    if (chain_[j].is_base || j == 0) break;
    --j;
  }
  std::reverse(members.begin(), members.end());
  return members;
}

std::optional<CkptRestorePlan> CkptStore::plan_restore(
    std::optional<std::uint32_t> lost_zone, FaultInjector& faults) {
  if (chain_.empty()) return std::nullopt;
  CkptRestorePlan plan;
  plan.partition_bytes.assign(partitions_, 0);

  for (std::size_t c = chain_.size(); c-- > 0;) {
    const std::vector<std::size_t> members = restore_set(c);
    bool ok = true;
    std::uint32_t replica_reads = 0;
    for (const std::size_t mi : members) {
      CkptGeneration& gen = chain_[mi];
      if (gen.seq != 0) {
        // Chain-hash verification of the member's manifest: a rotted
        // manifest fails for itself and every descendant whose chain
        // includes it.
        if (!gen.manifest_rotted &&
            ((gen.manifest_repairs == 0 &&
              seq_scheduled(opts_.scheduled_manifest_rot, gen.seq)) ||
             faults.ckpt_rot(gen.seq, kManifestPartition, kManifestCopy,
                             gen.manifest_repairs)))
          gen.manifest_rotted = true;
        if (gen.manifest_rotted) {
          ++plan.corrupt_manifests;
          ok = false;
          break;
        }
      }
      for (CkptLeg& leg : gen.legs) {
        const bool primary_here = !lost_zone || leg.home_zone != *lost_zone;
        const bool primary_good = copy_ok(gen, leg, 0, faults);
        if (primary_here && primary_good) continue;
        const bool replica_here =
            gen.replicated && (!lost_zone || leg.replica_zone != *lost_zone);
        if (replica_here && copy_ok(gen, leg, 1, faults)) {
          ++replica_reads;
          continue;
        }
        if (!primary_good || (replica_here && gen.replicated)) ++plan.corrupt_legs;
        ok = false;
        break;
      }
      if (!ok) break;
    }
    if (!ok) continue;

    const CkptGeneration& chosen = chain_[c];
    plan.seq = chosen.seq;
    plan.resume_superstep = chosen.resume_superstep;
    plan.fallback_depth = static_cast<std::uint32_t>(chain_.size() - 1 - c);
    plan.replica_reads = replica_reads;
    plan.initial = chosen.seq == 0;
    plan.payload = chosen.payload;
    for (const std::size_t mi : members)
      for (const CkptLeg& leg : chain_[mi].legs)
        plan.partition_bytes[leg.partition] += leg.bytes;
    return plan;
  }
  return std::nullopt;  // unreachable once generation 0 is seeded
}

void CkptStore::truncate_after(std::uint64_t seq) {
  while (!chain_.empty() && chain_.back().seq > seq) chain_.pop_back();
  // Recompute the delta run length so re-basing stays on schedule while the
  // replay re-writes the truncated rounds.
  deltas_since_base_ = 0;
  for (std::size_t i = chain_.size(); i-- > 0;) {
    if (chain_[i].seq == 0 || chain_[i].is_base) break;
    ++deltas_since_base_;
  }
}

CkptScrubOutcome CkptStore::scrub(FaultInjector& faults) {
  CkptScrubOutcome out;
  for (CkptGeneration& gen : chain_) {
    if (gen.seq == 0) continue;
    if (!gen.manifest_rotted &&
        ((gen.manifest_repairs == 0 && seq_scheduled(opts_.scheduled_manifest_rot, gen.seq)) ||
         faults.ckpt_rot(gen.seq, kManifestPartition, kManifestCopy, gen.manifest_repairs)))
      gen.manifest_rotted = true;
    ++out.copies_verified;
    if (gen.manifest_rotted) {
      gen.manifest_rotted = false;  // rewritten from the in-memory truth
      ++gen.manifest_repairs;
      ++out.manifest_repairs;
    }
    for (CkptLeg& leg : gen.legs) {
      ++out.copies_verified;
      if (!copy_ok(gen, leg, 0, faults)) {
        leg.torn = false;
        leg.rotted = false;
        ++leg.repairs;
        ++out.repairs;
        out.repaired_bytes += leg.bytes;
      }
      if (gen.replicated) {
        ++out.copies_verified;
        if (!copy_ok(gen, leg, 1, faults)) {
          leg.replica_torn = false;
          leg.replica_rotted = false;
          ++leg.replica_repairs;
          ++out.repairs;
          out.repaired_bytes += leg.bytes;
        }
      }
    }
  }
  return out;
}

}  // namespace pregel::cloud
