// Migration execution: pricing and performing vertex transfers between
// worker VMs through the modeled cloud planes.
//
// A MigrationPlanner (partition/rebalance.*) decides *what* moves; this
// module decides *what it costs* and whether it survives the weather. Each
// cross-VM transfer is coordinated through the simulated queue service
// (manifest put/get/remove on a "migrate" queue, so control traffic shows
// up in queue-op counts and is exposed to kQueueOp/kQueueCorrupt faults)
// and the payload rides the blob plane (donor kBlobWrite, receiver
// kBlobRead draws — so torn transfers surface exactly like torn
// checkpoints). Transfers within one migration event proceed in parallel
// across VM pairs; the stall charged to the barrier is the slowest VM's
// byte time plus one queue round-trip plus the worst retry tail.
//
// Failure is atomic: if any leg exhausts its retry budget, the whole event
// aborts, state stays where it was, and only the wasted retry latency is
// charged — the engine retries (or not) at a later barrier. With all fault
// rates zero, the executor draws nothing and adds no metric noise beyond
// the transfer itself.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "cloud/cost_model.hpp"
#include "cloud/faults.hpp"
#include "cloud/queue.hpp"
#include "cloud/vm.hpp"
#include "util/units.hpp"

namespace pregel::cloud {

/// One VM-to-VM leg of a migration event: `bytes` of vertex state,
/// adjacency, and pending inbox moving from `from_vm` to `to_vm`.
struct MigrationTransfer {
  std::uint32_t from_vm = 0;
  std::uint32_t to_vm = 0;
  Bytes bytes = 0;
  std::uint64_t vertices = 0;
};

struct MigrationOutcome {
  bool aborted = false;
  /// Barrier extension for the event (0 when there was nothing to move).
  Seconds stall = 0.0;
  Bytes bytes_moved = 0;
  std::uint64_t vertices_moved = 0;
  std::uint64_t queue_ops = 0;
};

/// The engine's fault-charging hook: runs one control-plane op of `kind`
/// under the job's retry policy and accounts faults/retries/corruptions in
/// the job metrics. Returning !success means the retry budget is exhausted.
using ControlOpFn = std::function<RetryOutcome(FaultKind)>;

class MigrationExecutor {
 public:
  MigrationExecutor(const CostModel& cost, const VmSpec& vm, QueueService& queues,
                    ControlOpFn control_op);

  /// Execute one migration event (a batch of transfers decided at a single
  /// barrier). Legs with zero bytes and zero vertices are skipped.
  MigrationOutcome execute(std::span<const MigrationTransfer> transfers,
                           std::uint64_t superstep);

 private:
  const CostModel& cost_;
  const VmSpec& vm_;
  QueueService& queues_;
  ControlOpFn control_op_;
};

}  // namespace pregel::cloud
