// Multi-tenancy performance noise.
//
// Public-cloud VMs share hosts and network fabric with other tenants; the
// paper calls out that "multi-tenancy impacts performance consistency" and
// that exact VM placement (and thus latency/bandwidth) cannot be controlled.
// This model draws a per-worker, per-superstep multiplicative slowdown from
// a seeded lognormal distribution, so experiments can run perfectly
// deterministic (sigma = 0, the default) or with calibrated cloud noise.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace pregel::cloud {

class TenancyNoise {
 public:
  /// sigma = 0 disables noise (factor is exactly 1). Typical cloud
  /// variability is sigma ~ 0.1-0.3 (10-35% swings).
  explicit TenancyNoise(double sigma = 0.0, std::uint64_t seed = 1);

  /// Slowdown factor (>= 1) for `worker` in `superstep`. Deterministic in
  /// (sigma, seed, worker, superstep) — independent of call order.
  double factor(std::uint32_t worker, std::uint64_t superstep) const noexcept;

  double sigma() const noexcept { return sigma_; }

 private:
  double sigma_;
  std::uint64_t seed_;
};

}  // namespace pregel::cloud
