// Transient-fault injection for the simulated cloud substrate.
//
// The paper runs Pregel.NET on real Azure, where the storage services are
// "reliable" only through client-side retries, multi-tenant VMs straggle,
// and workers can disappear mid-job. This module gives the simulation the
// same weather: a seeded, deterministic FaultInjector draws transient
// queue-operation failures, blob read/write failures, per-(VM, superstep)
// straggler slowdowns, and spot-style VM preemptions, each with an
// independently configurable rate and seed. A RetryPolicy (exponential
// backoff with decorrelated jitter, capped attempts, per-op deadline)
// describes how the control plane masks the transient classes; the engine
// charges the masked latency to the cost model and escalates exhausted
// retries to worker failures.
//
// Every draw is a pure function of (seed, stream counter) or
// (seed, vm, superstep[, epoch]), so identical configurations replay
// identical fault sequences — experiments stay bit-reproducible.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pregel::cloud {

/// Transient fault classes the injector can produce. kBlobCorrupt models a
/// read that completes but returns a payload failing checksum verification;
/// the read path escalates it to a retriable failure. kQueueCorrupt is the
/// queue-plane analog: a dequeue that delivers a message whose CRC32C check
/// fails (the data-plane hot path, not just recovery reads). kCkptTornWrite
/// is a checkpoint-store write (data leg or manifest) that is acknowledged
/// but lands torn — undetectable at write time, caught by CRC verification
/// when the blob is next read (restore walk or scrub pass).
enum class FaultKind {
  kQueueOp,
  kBlobRead,
  kBlobWrite,
  kBlobCorrupt,
  kQueueCorrupt,
  kCkptTornWrite,
};

/// What goes wrong, how often, and under which seeds.
struct FaultPlan {
  /// Per-operation transient failure probabilities (retriable).
  double queue_op_failure_rate = 0.0;
  double blob_read_failure_rate = 0.0;
  double blob_write_failure_rate = 0.0;

  /// Probability that a blob read returns a payload whose CRC32C check
  /// fails (torn or bit-rotted object). Drawn from its own stream on
  /// otherwise-successful read attempts only, so it composes with
  /// blob_read_failure_rate without perturbing its draw sequence.
  double blob_corruption_rate = 0.0;

  /// Probability that a queue operation delivers a message failing its
  /// CRC32C check. Composes with queue_op_failure_rate exactly as
  /// blob_corruption_rate composes with blob reads: drawn from its own
  /// stream on otherwise-successful attempts only.
  double queue_corruption_rate = 0.0;

  /// Probability that one checkpoint-store blob write (a per-partition data
  /// leg, the chain-hashed manifest, or a cross-zone replica leg) is
  /// acknowledged but lands torn. Drawn from its own counter stream, one
  /// draw per write, so it composes with the kBlobWrite retry stream
  /// without perturbing its draw sequence.
  double ckpt_torn_write_rate = 0.0;

  /// Probability that a stored checkpoint blob copy bit-rots at rest.
  /// Keyed by (publish serial, partition, copy, repair epoch) — call-order
  /// independent, so a restore walk and a scrub pass observe the same rot —
  /// and drawn on the kBlobCorrupt seed (`corruption_seed`), since rot is
  /// detected by exactly the CRC32C verification that catches corrupt
  /// reads. A scrub repair bumps the copy's repair epoch and the rewritten
  /// blob redraws.
  double ckpt_rot_rate = 0.0;

  /// Spot-style VM preemption probability per VM per superstep. A preempted
  /// VM is a worker failure: the engine recovers from the last checkpoint
  /// (or loses the job without one).
  double vm_preemption_rate = 0.0;

  /// Probability (per superstep, per manager epoch) that the job-manager
  /// role itself is preempted mid-superstep. A standby detects the lost
  /// lease, reloads the manifest blob, bumps the fencing epoch and resumes;
  /// the detection + takeover latency is charged to the cost model.
  double manager_preemption_rate = 0.0;

  /// Probability (per availability zone, per superstep) that an entire zone
  /// goes dark at once, preempting every VM placed in it. Only meaningful
  /// when the cluster is configured with more than one zone.
  double zone_outage_rate = 0.0;

  /// Probability that a barrier check-in's remove() is lost (visibility
  /// timeout expires while the manager holds the message), so the queue
  /// redelivers it and the barrier loop must dedupe. Drawn from its own
  /// stream once per successfully tallied check-in.
  double queue_duplicate_rate = 0.0;

  /// Probability that a VM straggles in a given superstep, and the
  /// multiplicative slowdown applied to its compute/network time when it
  /// does (multi-tenant noisy-neighbor episodes, distinct from the
  /// continuous lognormal TenancyNoise).
  double straggler_rate = 0.0;
  double straggler_slowdown = 4.0;

  std::uint64_t queue_seed = 0xFA01;
  std::uint64_t blob_seed = 0xFA02;
  std::uint64_t preemption_seed = 0xFA03;
  std::uint64_t straggler_seed = 0xFA04;
  std::uint64_t corruption_seed = 0xFA05;
  std::uint64_t queue_corruption_seed = 0xFA06;
  std::uint64_t manager_seed = 0xFA07;
  std::uint64_t zone_seed = 0xFA08;
  std::uint64_t queue_duplicate_seed = 0xFA09;
  std::uint64_t ckpt_seed = 0xFA0A;

  /// True when any retriable (queue/blob/corruption) rate is nonzero.
  bool any_transient() const noexcept {
    return queue_op_failure_rate > 0.0 || blob_read_failure_rate > 0.0 ||
           blob_write_failure_rate > 0.0 || blob_corruption_rate > 0.0 ||
           queue_corruption_rate > 0.0;
  }
  /// Throws std::logic_error on out-of-range rates or slowdown < 1.
  void validate() const;
};

/// Client-side retry discipline for control-plane storage operations:
/// exponential backoff with decorrelated jitter (sleep_{n+1} drawn uniformly
/// from [base, 3*sleep_n], capped), bounded attempts, and a per-operation
/// latency deadline after which the caller gives up.
struct RetryPolicy {
  std::uint32_t max_attempts = 5;
  Seconds base_backoff = 100_ms;
  Seconds max_backoff = 5.0;
  /// Total extra latency (failed attempts + sleeps) a single logical op may
  /// accumulate before it is abandoned even with attempts remaining.
  Seconds op_deadline = 60.0;

  /// Throws std::logic_error on zero attempts or non-positive delays.
  void validate() const;
};

/// Outcome of one logical operation run under a RetryPolicy.
struct RetryOutcome {
  bool success = true;
  std::uint32_t attempts = 1;   ///< total attempts made (1 = clean first try)
  std::uint64_t faults = 0;     ///< transient failures drawn along the way
  std::uint64_t corruptions = 0;  ///< checksum-failed reads among the faults
  Seconds extra_latency = 0.0;  ///< failed-attempt latency + backoff sleeps
};

/// Deterministic fault source. Queue/blob draws consume per-kind stream
/// counters (call order within a kind is the replay key); preemption and
/// straggler draws are keyed by (vm, superstep) so they are call-order
/// independent, with preemption additionally keyed by the recovery epoch so
/// a replayed superstep redraws instead of dying forever.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Run one logical operation of `kind` under `retry`. `attempt_latency` is
  /// the modeled cost of a failed attempt (the successful attempt is charged
  /// by the caller exactly as it would be without fault injection, so a
  /// zero-rate plan adds zero latency and perturbs nothing).
  RetryOutcome attempt(FaultKind kind, const RetryPolicy& retry, Seconds attempt_latency);

  /// Spot preemption draw for `vm` at `superstep` in recovery `epoch`.
  bool vm_preempted(std::uint32_t vm, std::uint64_t superstep,
                    std::uint64_t epoch) const noexcept;

  /// Manager-preemption draw for `superstep` under fencing `epoch`. Keyed by
  /// the epoch so the standby that just took over does not immediately
  /// redraw the same death at the same superstep.
  bool manager_preempted(std::uint64_t superstep, std::uint64_t epoch) const noexcept;

  /// Correlated-failure draw: does availability `zone` go dark at
  /// `superstep` in recovery `epoch`?
  bool zone_outage(std::uint32_t zone, std::uint64_t superstep,
                   std::uint64_t epoch) const noexcept;

  /// Duplicate-delivery draw for one tallied barrier check-in: true when the
  /// remove() is lost and the message will be redelivered. Consumes the
  /// dedicated duplicate stream counter; a zero rate draws nothing.
  bool next_duplicate() noexcept;
  std::uint64_t duplicate_draws() const noexcept { return duplicate_draws_; }

  /// Torn-write draw for one checkpoint-store blob write (data leg,
  /// manifest, or replica leg). Consumes the kCkptTornWrite stream counter;
  /// a zero rate draws nothing.
  bool next_ckpt_torn() noexcept;

  /// At-rest bit-rot draw for checkpoint blob copy `copy` (0 = primary,
  /// 1 = replica) of partition `partition` in the generation published with
  /// `serial`. Pure function of the key, so restore walks and scrub passes
  /// agree on which copies rotted; `repair_epoch` counts scrub repairs of
  /// this copy so a rewritten blob redraws instead of rotting forever.
  bool ckpt_rot(std::uint64_t serial, std::uint32_t partition, std::uint32_t copy,
                std::uint32_t repair_epoch) const noexcept;

  /// Straggler slowdown factor (>= 1) for `vm` at `superstep`; exactly 1
  /// when the VM is not straggling.
  double straggler_factor(std::uint32_t vm, std::uint64_t superstep) const noexcept;

  std::uint64_t draws(FaultKind kind) const noexcept;

 private:
  double rate_of(FaultKind kind) const noexcept;
  /// Uniform [0,1) from the kind's counter stream; advances the counter.
  double next_uniform(FaultKind kind) noexcept;

  FaultPlan plan_;
  std::uint64_t queue_draws_ = 0;
  std::uint64_t blob_read_draws_ = 0;
  std::uint64_t blob_write_draws_ = 0;
  std::uint64_t blob_corrupt_draws_ = 0;
  std::uint64_t queue_corrupt_draws_ = 0;
  std::uint64_t duplicate_draws_ = 0;
  std::uint64_t ckpt_torn_draws_ = 0;
};

}  // namespace pregel::cloud
