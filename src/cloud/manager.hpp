// Job-manager control protocol: identified barrier check-ins, fencing
// epochs, and manager failover.
//
// The paper's job manager (a Small-VM role, §III) drives supersteps by
// posting tokens to a "step" queue and collecting worker check-ins from a
// "barrier" queue. Azure queues are at-least-once: a consumer that holds a
// message past its visibility timeout sees it redelivered, and a crashed
// consumer's un-removed messages reappear for whoever reads next. A barrier
// protocol that trusts exactly-once, anonymous, in-order delivery is
// therefore wrong on the real substrate, and the manager itself — one more
// preemptible VM — is a single point of failure the paper never hardens.
//
// This module makes the protocol honest:
//
//  * Step tokens and barrier check-ins carry sender identity and a fencing
//    epoch — "superstep:<n>:<epoch>" and "active:<worker>:<epoch>:<count>" —
//    so the barrier drain can dedupe redelivered copies per (worker, epoch),
//    fence stale-epoch messages from zombie senders, and convert a missing
//    check-in into a modeled detection timeout instead of an assertion.
//  * A JobManager state machine persists a CRC32C-verified manifest
//    (superstep, fencing epoch, vertex-location table version, aggregator
//    state) at each barrier; when the manager VM is preempted, a standby
//    reloads the manifest, bumps the epoch, and resumes the job.
//
// Everything here is deterministic and engine-agnostic: the engine supplies
// cost attribution and fault draws through callables, so the protocol logic
// is unit-testable against a bare AzureQueue.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cloud/queue.hpp"

namespace pregel::cloud {

// ---------------------------------------------------------------------------
// Identified, epoch-fenced control messages.

struct StepToken {
  std::uint64_t superstep = 0;
  std::uint64_t epoch = 0;
  friend bool operator==(const StepToken&, const StepToken&) = default;
};

struct BarrierCheckin {
  std::uint32_t worker = 0;
  std::uint64_t epoch = 0;
  std::uint64_t active = 0;
  friend bool operator==(const BarrierCheckin&, const BarrierCheckin&) = default;
};

/// "superstep:<n>:<epoch>" — what the manager posts to the step queue.
std::string make_step_token(std::uint64_t superstep, std::uint64_t epoch);

/// "active:<worker>:<epoch>:<count>" — a worker's barrier check-in.
std::string make_checkin(std::uint32_t worker, std::uint64_t epoch, std::uint64_t active);

/// Strict parses: exact prefix, exactly the right number of ':'-separated
/// fully-decimal fields, no trailing garbage. Malformed bodies are rejected,
/// never read as zero.
std::optional<StepToken> parse_step_token(std::string_view body);
std::optional<BarrierCheckin> parse_checkin(std::string_view body);

// ---------------------------------------------------------------------------
// Idempotent barrier drain.

struct BarrierDrainStats {
  std::uint64_t active_total = 0;   ///< sum of counts over first-time check-ins
  std::uint32_t checked_in = 0;     ///< distinct workers tallied
  std::uint64_t duplicates = 0;     ///< redelivered copies deduped per (worker, epoch)
  std::uint64_t fenced = 0;         ///< stale/foreign-epoch messages discarded
  std::uint64_t malformed = 0;      ///< CRC-failed or unparseable bodies discarded
  std::vector<std::uint32_t> missing;  ///< workers that never checked in
};

/// Drain one superstep's barrier. Reads until every expected worker has been
/// tallied once and the queue is empty (so no message can leak into the next
/// superstep's barrier), deduping per (worker, epoch) and fencing messages
/// whose epoch differs from `epoch`. An empty queue with workers still
/// missing ends the drain: the caller models a detection timeout for
/// `missing` instead of asserting.
///
/// `per_op(vm)` is invoked once per queue operation issued (get / remove /
/// lost-remove), with the worker VM the operation's cost is attributed to —
/// the engine wires it to its guarded control-op path. `duplicate_draw()` is
/// consulted once per first-time tally; returning true models the remove()
/// being lost to a visibility-timeout expiry, so the message redelivers and
/// must be deduped. Either callable may be empty.
BarrierDrainStats drain_barrier(AzureQueue& barrier, std::uint32_t expected_workers,
                                std::uint64_t epoch,
                                const std::function<void(std::uint32_t)>& per_op = {},
                                const std::function<bool()>& duplicate_draw = {});

// ---------------------------------------------------------------------------
// Manager manifest and failover state machine.

/// Everything a standby needs to resume the job: the last completed
/// superstep, the fencing epoch it completed under, the version of the
/// vertex-location table (so a stale standby cannot route messages with an
/// outdated placement), and the aggregator state the next master-compute
/// depends on.
struct ManagerManifest {
  std::uint64_t superstep = 0;
  std::uint64_t epoch = 0;
  std::uint64_t location_version = 0;
  /// Publish serial of the newest visible checkpoint generation, so a
  /// standby resumes against the same restore chain the primary saw.
  std::uint64_t ckpt_generation = 0;
  /// Aggregator/global state, sorted by key; doubles round-trip bit-exactly.
  std::vector<std::pair<std::uint64_t, double>> aggregators;

  /// Text blob with a trailing CRC32C line; deserialize() verifies it.
  std::string serialize() const;
  /// Returns nullopt on truncation, field corruption, or CRC mismatch.
  static std::optional<ManagerManifest> deserialize(std::string_view blob);

  friend bool operator==(const ManagerManifest&, const ManagerManifest&) = default;
};

enum class ManagerState {
  kPrimary,   ///< a live manager owns the job
  kFailed,    ///< the primary was preempted; nobody owns the job yet
};

/// The job-manager replica pair: a primary that persists the manifest at
/// each barrier, and an implicit standby that can take over after the
/// primary's lease lapses. The engine drives the transitions and charges the
/// detection/takeover latency; this class owns the durable state.
class JobManager {
 public:
  std::uint64_t epoch() const noexcept { return epoch_; }
  ManagerState state() const noexcept { return state_; }
  std::uint64_t failovers() const noexcept { return failovers_; }
  bool has_manifest() const noexcept { return !blob_.empty(); }
  const std::string& manifest_blob() const noexcept { return blob_; }

  /// Primary persists the manifest (serialized + CRC-stamped) at a barrier.
  void persist(const ManagerManifest& m) { blob_ = m.serialize(); }

  /// The fault stream preempted the primary mid-superstep.
  void preempt() noexcept { state_ = ManagerState::kFailed; }

  /// Standby takeover: reload and CRC-verify the manifest, bump the fencing
  /// epoch past anything the dead primary ever used, resume as primary.
  /// Throws std::runtime_error when there is no manifest or it fails
  /// verification — a job whose durable state is gone cannot be resumed.
  ManagerManifest failover();

  /// Tests / zombie-fencing: corrupt the durable blob in place.
  void corrupt_manifest_for_test(std::string blob) { blob_ = std::move(blob); }

 private:
  std::string blob_;
  std::uint64_t epoch_ = 0;
  std::uint64_t failovers_ = 0;
  ManagerState state_ = ManagerState::kPrimary;
};

}  // namespace pregel::cloud
