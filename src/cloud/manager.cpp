#include "cloud/manager.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace pregel::cloud {

namespace {

/// Parse one fully-decimal field; advances `body` past the field and the
/// separator. Returns nullopt on empty/garbage/overflow.
std::optional<std::uint64_t> take_decimal(std::string_view& body, bool last) {
  const std::size_t sep = body.find(':');
  const std::string_view field = last ? body : body.substr(0, sep);
  if (last && sep != std::string_view::npos) return std::nullopt;  // extra fields
  if (!last && sep == std::string_view::npos) return std::nullopt;  // truncated
  if (field.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) return std::nullopt;
  body = last ? std::string_view{} : body.substr(sep + 1);
  return value;
}

bool strip_prefix(std::string_view& body, std::string_view prefix) {
  if (body.size() <= prefix.size() || body.substr(0, prefix.size()) != prefix) return false;
  body.remove_prefix(prefix.size());
  return true;
}

}  // namespace

std::string make_step_token(std::uint64_t superstep, std::uint64_t epoch) {
  return "superstep:" + std::to_string(superstep) + ":" + std::to_string(epoch);
}

std::string make_checkin(std::uint32_t worker, std::uint64_t epoch, std::uint64_t active) {
  return "active:" + std::to_string(worker) + ":" + std::to_string(epoch) + ":" +
         std::to_string(active);
}

std::optional<StepToken> parse_step_token(std::string_view body) {
  if (!strip_prefix(body, "superstep:")) return std::nullopt;
  const auto superstep = take_decimal(body, false);
  if (!superstep) return std::nullopt;
  const auto epoch = take_decimal(body, true);
  if (!epoch) return std::nullopt;
  return StepToken{*superstep, *epoch};
}

std::optional<BarrierCheckin> parse_checkin(std::string_view body) {
  if (!strip_prefix(body, "active:")) return std::nullopt;
  const auto worker = take_decimal(body, false);
  if (!worker || *worker > 0xFFFFFFFFULL) return std::nullopt;
  const auto epoch = take_decimal(body, false);
  if (!epoch) return std::nullopt;
  const auto active = take_decimal(body, true);
  if (!active) return std::nullopt;
  return BarrierCheckin{static_cast<std::uint32_t>(*worker), *epoch, *active};
}

BarrierDrainStats drain_barrier(AzureQueue& barrier, std::uint32_t expected_workers,
                                std::uint64_t epoch,
                                const std::function<void(std::uint32_t)>& per_op,
                                const std::function<bool()>& duplicate_draw) {
  BarrierDrainStats s;
  std::vector<char> checked(expected_workers, 0);
  // Every iteration permanently consumes a message or ends the drain, and a
  // redelivery happens at most once per tallied check-in, so the loop is
  // bounded; the cap is a belt-and-braces guard against a misbehaving queue.
  const std::size_t cap = 4 * static_cast<std::size_t>(expected_workers) + 16;
  const auto charge = [&](std::uint32_t vm) {
    if (per_op) per_op(vm);
  };
  for (std::size_t iter = 0; iter < cap; ++iter) {
    // Drain past the expected count until the queue is visibly empty:
    // leftover redeliveries must not leak into the next superstep's barrier.
    if (s.checked_in >= expected_workers && barrier.visible_count() == 0) break;
    const std::uint32_t read_vm =
        expected_workers == 0 ? 0 : std::min(s.checked_in, expected_workers - 1);
    charge(read_vm);
    const auto msg = barrier.get();
    if (!msg) break;  // nothing left: anyone untallied is missing
    const auto c = verify_queue_message(*msg) ? parse_checkin(msg->body) : std::nullopt;
    if (!c || c->worker >= expected_workers) {
      ++s.malformed;  // CRC failure, garbage body, or out-of-range sender
      charge(read_vm);
      barrier.remove(msg->id);
      continue;
    }
    if (c->epoch != epoch) {
      ++s.fenced;  // zombie sender from a previous fencing epoch
      charge(c->worker);
      barrier.remove(msg->id);
      continue;
    }
    if (checked[c->worker]) {
      ++s.duplicates;  // redelivered copy of an already-tallied check-in
      charge(c->worker);
      barrier.remove(msg->id);
      continue;
    }
    checked[c->worker] = 1;
    ++s.checked_in;
    s.active_total += c->active;
    charge(c->worker);
    if (duplicate_draw && duplicate_draw()) {
      // The remove() was issued (and paid for) but lost: the visibility
      // timeout expires and the queue redelivers the message, which the
      // dedup above will classify as a duplicate.
      barrier.release(msg->id);
    } else {
      barrier.remove(msg->id);
    }
  }
  for (std::uint32_t w = 0; w < expected_workers; ++w)
    if (!checked[w]) s.missing.push_back(w);
  return s;
}

std::string ManagerManifest::serialize() const {
  std::string body = "pregel-manifest-v1 superstep=" + std::to_string(superstep) +
                     " epoch=" + std::to_string(epoch) +
                     " locv=" + std::to_string(location_version) +
                     " ckpt=" + std::to_string(ckpt_generation) +
                     " aggs=" + std::to_string(aggregators.size()) + "\n";
  for (const auto& [key, value] : aggregators) {
    // Doubles go through their bit pattern so the standby's master-compute
    // resumes from exactly the aggregates the primary saw.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llu %016llx\n",
                  static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(value)));
    body += buf;
  }
  return body + "crc=" + std::to_string(queue_body_checksum(body)) + "\n";
}

std::optional<ManagerManifest> ManagerManifest::deserialize(std::string_view blob) {
  const std::size_t crc_at = blob.rfind("crc=");
  if (crc_at == std::string_view::npos || crc_at == 0) return std::nullopt;
  std::string_view crc_line = blob.substr(crc_at + 4);
  if (!crc_line.empty() && crc_line.back() == '\n') crc_line.remove_suffix(1);
  std::uint64_t stored = 0;
  {
    const auto [ptr, ec] =
        std::from_chars(crc_line.data(), crc_line.data() + crc_line.size(), stored);
    if (ec != std::errc() || ptr != crc_line.data() + crc_line.size()) return std::nullopt;
  }
  const std::string_view body = blob.substr(0, crc_at);
  if (stored != queue_body_checksum(body)) return std::nullopt;

  ManagerManifest m;
  std::size_t aggs = 0;
  {
    unsigned long long s = 0, e = 0, l = 0, c = 0, a = 0;
    const std::string header(body.substr(0, body.find('\n')));
    if (std::sscanf(header.c_str(),
                    "pregel-manifest-v1 superstep=%llu epoch=%llu locv=%llu "
                    "ckpt=%llu aggs=%llu",
                    &s, &e, &l, &c, &a) != 5)
      return std::nullopt;
    m.superstep = s;
    m.epoch = e;
    m.location_version = l;
    m.ckpt_generation = c;
    aggs = a;
  }
  std::size_t pos = body.find('\n');
  if (pos == std::string_view::npos) return std::nullopt;
  ++pos;
  for (std::size_t i = 0; i < aggs; ++i) {
    const std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) return std::nullopt;
    const std::string line(body.substr(pos, eol - pos));
    unsigned long long key = 0, bits = 0;
    if (std::sscanf(line.c_str(), "%llu %llx", &key, &bits) != 2) return std::nullopt;
    m.aggregators.emplace_back(key, std::bit_cast<double>(static_cast<std::uint64_t>(bits)));
    pos = eol + 1;
  }
  return m;
}

ManagerManifest JobManager::failover() {
  if (blob_.empty())
    throw std::runtime_error("JobManager: failover with no persisted manifest");
  const auto m = ManagerManifest::deserialize(blob_);
  if (!m)
    throw std::runtime_error("JobManager: manifest failed CRC32C verification");
  // Fence past every epoch the dead primary could have used, even if the
  // standby's local notion of the epoch lagged the manifest's.
  epoch_ = std::max(epoch_, m->epoch) + 1;
  ++failovers_;
  state_ = ManagerState::kPrimary;
  return *m;
}

}  // namespace pregel::cloud
