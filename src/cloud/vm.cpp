#include "cloud/vm.hpp"

#include "runtime/trace.hpp"
#include "util/check.hpp"

namespace pregel::cloud {

VmSpec azure_large_2012() {
  return {.name = "azure-large-2012",
          .cores = 4,
          .clock_ghz = 1.6,
          .ram = 7_GiB,
          .network_bps = mbps(400),
          .price_per_hour = 0.48};
}

VmSpec azure_small_2012() {
  return {.name = "azure-small-2012",
          .cores = 1,
          .clock_ghz = 1.6,
          .ram = 1_GiB + 768_MiB,  // 1.75 GB = one fourth of 7 GB
          .network_bps = mbps(100),
          .price_per_hour = 0.12};
}

VmSpec with_scaled_ram(VmSpec vm, double factor) {
  PREGEL_CHECK_MSG(factor > 0.0, "with_scaled_ram: factor must be positive");
  vm.ram = static_cast<Bytes>(static_cast<double>(vm.ram) * factor);
  vm.name += "/ram*" + std::to_string(factor);
  return vm;
}

void CostMeter::charge(const VmSpec& vm, std::uint32_t count, Seconds duration) {
  PREGEL_CHECK_MSG(duration >= 0.0, "CostMeter::charge: negative duration");
  const Seconds vmsec = duration * count;
  vm_seconds_ += vmsec;
  usd_ += vmsec / 3600.0 * vm.price_per_hour;
  if (trace::counters_on()) {
    trace::Tracer& t = trace::Tracer::instance();
    t.counter("cloud.meter.charges").add(1);
    t.counter("cloud.meter.vm_microseconds").add(static_cast<std::uint64_t>(vmsec * 1e6));
  }
}

}  // namespace pregel::cloud
