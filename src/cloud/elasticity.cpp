#include "cloud/elasticity.hpp"

#include "runtime/trace.hpp"
#include "util/check.hpp"

namespace pregel::cloud {

namespace {

/// Every barrier-time scaling decision is countable; a decision that departs
/// from the current worker count additionally counts as a change (the
/// engine's scale.decision instant carries the from/to detail).
void count_decision(std::uint32_t decided, const ScalingSignals& s) {
  if (!trace::counters_on()) return;
  trace::Tracer& t = trace::Tracer::instance();
  t.counter("cloud.scaling.decisions").add(1);
  if (decided != s.current_workers) t.counter("cloud.scaling.changes").add(1);
}

}  // namespace

ActiveVertexScaling::ActiveVertexScaling(std::uint32_t low, std::uint32_t high,
                                         double threshold)
    : low_(low), high_(high), threshold_(threshold) {
  PREGEL_CHECK_MSG(low >= 1, "ActiveVertexScaling: low must be >= 1");
  PREGEL_CHECK_MSG(high >= low, "ActiveVertexScaling: high must be >= low");
  PREGEL_CHECK_MSG(threshold >= 0.0 && threshold <= 1.0,
                   "ActiveVertexScaling: threshold in [0,1]");
}

std::uint32_t ActiveVertexScaling::decide(const ScalingSignals& s) {
  const double frac = s.total_vertices == 0
                          ? 0.0
                          : static_cast<double>(s.active_vertices) /
                                static_cast<double>(s.total_vertices);
  const std::uint32_t decided =
      s.total_vertices != 0 && frac >= threshold_ ? high_ : low_;
  count_decision(decided, s);
  return decided;
}

std::string ActiveVertexScaling::name() const {
  return "active>=" + std::to_string(static_cast<int>(threshold_ * 100)) + "%:" +
         std::to_string(low_) + "<->" + std::to_string(high_);
}

HysteresisScaling::HysteresisScaling(std::uint32_t low, std::uint32_t high,
                                     double in_threshold, double out_threshold)
    : low_(low), high_(high), in_(in_threshold), out_(out_threshold) {
  PREGEL_CHECK_MSG(low >= 1, "HysteresisScaling: low must be >= 1");
  PREGEL_CHECK_MSG(high >= low, "HysteresisScaling: high must be >= low");
  PREGEL_CHECK_MSG(0.0 <= in_threshold && in_threshold < out_threshold &&
                       out_threshold <= 1.0,
                   "HysteresisScaling: need 0 <= in < out <= 1");
}

std::uint32_t HysteresisScaling::decide(const ScalingSignals& s) {
  if (s.total_vertices != 0) {
    const double frac =
        static_cast<double>(s.active_vertices) / static_cast<double>(s.total_vertices);
    if (!scaled_out_ && frac >= out_) scaled_out_ = true;
    else if (scaled_out_ && frac <= in_) scaled_out_ = false;
  }
  const std::uint32_t decided = scaled_out_ ? high_ : low_;
  count_decision(decided, s);
  return decided;
}

std::string HysteresisScaling::name() const {
  return "hysteresis[" + std::to_string(static_cast<int>(in_ * 100)) + "%," +
         std::to_string(static_cast<int>(out_ * 100)) + "%]:" + std::to_string(low_) +
         "<->" + std::to_string(high_);
}

MemoryPressureScaling::MemoryPressureScaling(std::uint32_t low, std::uint32_t high,
                                             Bytes memory_target, double out_fraction,
                                             double in_fraction)
    : low_(low), high_(high), target_(memory_target), out_(out_fraction), in_(in_fraction) {
  PREGEL_CHECK_MSG(low >= 1, "MemoryPressureScaling: low must be >= 1");
  PREGEL_CHECK_MSG(high >= low, "MemoryPressureScaling: high must be >= low");
  PREGEL_CHECK_MSG(memory_target > 0, "MemoryPressureScaling: memory_target must be > 0");
  PREGEL_CHECK_MSG(0.0 < in_fraction && in_fraction < out_fraction,
                   "MemoryPressureScaling: need 0 < in < out");
}

std::uint32_t MemoryPressureScaling::decide(const ScalingSignals& s) {
  const double pressure =
      static_cast<double>(s.max_worker_memory) / static_cast<double>(target_);
  if (!scaled_out_ && pressure >= out_) scaled_out_ = true;
  else if (scaled_out_ && pressure <= in_) scaled_out_ = false;
  const std::uint32_t decided = scaled_out_ ? high_ : low_;
  count_decision(decided, s);
  return decided;
}

std::string MemoryPressureScaling::name() const {
  return "mem-pressure[" + std::to_string(static_cast<int>(in_ * 100)) + "%," +
         std::to_string(static_cast<int>(out_ * 100)) + "%]:" + std::to_string(low_) +
         "<->" + std::to_string(high_);
}

OracleScaling::OracleScaling(std::uint32_t low, std::uint32_t high,
                             std::vector<Seconds> times_low, std::vector<Seconds> times_high)
    : low_(low),
      high_(high),
      times_low_(std::move(times_low)),
      times_high_(std::move(times_high)) {
  PREGEL_CHECK_MSG(times_low_.size() == times_high_.size(),
                   "OracleScaling: recorded runs must have equal superstep counts");
}

std::uint32_t OracleScaling::decide(const ScalingSignals& s) {
  // The decision at the barrier before superstep s+1 uses that superstep's
  // recorded costs (the oracle knows the future — that is the point).
  const std::uint64_t next = s.superstep + 1;
  const std::uint32_t decided =
      next < times_low_.size() && times_high_[next] < times_low_[next] ? high_ : low_;
  count_decision(decided, s);
  return decided;
}

}  // namespace pregel::cloud
