#include "harness/swath_search.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "algos/bc.hpp"
#include "core/swath.hpp"
#include "harness/experiment.hpp"

namespace pregel::harness {

namespace {

bool completes(const Graph& g, const ClusterConfig& cluster, const Partitioning& parts,
               const std::vector<VertexId>& roots, std::uint32_t k) {
  const auto take =
      static_cast<std::ptrdiff_t>(std::min<std::size_t>(k, roots.size()));
  std::vector<VertexId> subset(roots.begin(), roots.begin() + take);
  try {
    const auto r = algos::run_bc(g, cluster, parts, subset);
    return !r.failed;
  } catch (const JobFailure&) {
    return false;
  }
}

}  // namespace

SwathSearchResult find_largest_completing_bc_swath(const Graph& g,
                                                   const ClusterConfig& cluster,
                                                   const Partitioning& parts,
                                                   const std::vector<VertexId>& roots) {
  SwathSearchResult result;
  const auto cap = static_cast<std::uint32_t>(roots.size());

  // Exponential probe upward from 4 until a failure (or the cap).
  std::uint32_t lo = 0, hi = 0;
  for (std::uint32_t k = std::min(4u, cap);; k = std::min(k * 2, cap)) {
    ++result.probes;
    std::cout << "  probe swath=" << k << " ... " << std::flush;
    if (completes(g, cluster, parts, roots, k)) {
      std::cout << "completes\n";
      lo = k;
      if (k == cap) break;
    } else {
      std::cout << "VM restart\n";
      hi = k;
      break;
    }
  }
  if (hi == 0) {  // never failed
    result.largest_completing = lo;
    return result;
  }
  // Bisect to ~10% granularity.
  while (hi - lo > std::max(1u, lo / 10)) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    ++result.probes;
    std::cout << "  probe swath=" << mid << " ... " << std::flush;
    if (completes(g, cluster, parts, roots, mid)) {
      std::cout << "completes\n";
      lo = mid;
    } else {
      std::cout << "VM restart\n";
      hi = mid;
    }
  }
  result.largest_completing = lo;
  result.smallest_failing = hi;
  return result;
}

std::uint32_t cached_baseline_swath(const std::string& dataset_name, const Graph& g,
                                    const ClusterConfig& cluster, const Partitioning& parts,
                                    const std::vector<VertexId>& roots) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(env().results_dir) /
                        ("baseline_swath_" + dataset_name + "_div" +
                         std::to_string(env().scale_div) + ".txt");
  if (std::ifstream in(path); in) {
    std::uint32_t cached = 0;
    if (in >> cached && cached >= 1 && cached <= roots.size()) {
      std::cout << "  baseline swath (cached): " << cached << "\n";
      return cached;
    }
  }
  const auto search = find_largest_completing_bc_swath(g, cluster, parts, roots);
  const std::uint32_t size = std::max(search.largest_completing, 2u);
  fs::create_directories(env().results_dir);
  std::ofstream out(path);
  out << size << "\n";
  return size;
}

}  // namespace pregel::harness
