#include "harness/experiment.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/streaming.hpp"
#include "runtime/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pregel::harness {

namespace {

unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : fallback;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && *v != '0';
}

// Set by init() before the first env() call; env() folds it in.
bool g_smoke = false;

// Trace export destination, fixed at init() time so the atexit handler needs
// no allocation-order guarantees beyond this translation unit's statics.
std::string g_trace_path;

void flush_trace() {
  trace::Tracer& t = trace::Tracer::instance();
  namespace fs = std::filesystem;
  const fs::path trace_path(g_trace_path);
  if (trace_path.has_parent_path()) fs::create_directories(trace_path.parent_path());
  {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "[trace] cannot open " << g_trace_path << "\n";
      return;
    }
    t.write_chrome_trace(out);
  }
  fs::path counters_path = trace_path;
  counters_path.replace_filename(trace_path.stem().string() + "_counters.json");
  {
    std::ofstream out(counters_path);
    if (out) t.write_counter_summary(out);
  }
  std::cout << "[trace] " << trace_path.string() << " (" << t.event_count()
            << " events; counters in " << counters_path.string() << ")\n";
}

std::string program_stem(const char* argv0) {
  const std::string stem = std::filesystem::path(argv0).stem().string();
  return stem.empty() ? "bench" : stem;
}

}  // namespace

const ExperimentEnv& env() {
  static const ExperimentEnv e = [] {
    ExperimentEnv out;
    out.smoke = g_smoke || env_flag("PREGEL_SMOKE");
    out.quick = env_flag("PREGEL_QUICK") || out.smoke;
    out.scale_div =
        env_unsigned("PREGEL_SCALE_DIV", out.smoke ? 100u : (out.quick ? 50u : 10u));
    if (const char* d = std::getenv("PREGEL_RESULTS_DIR"); d != nullptr && *d != '\0')
      out.results_dir = d;
    out.seed = env_unsigned("PREGEL_SEED", 2013);
    return out;
  }();
  return e;
}

void init(int& argc, char** argv) {
  bool trace_requested = false;
  std::string trace_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      g_smoke = true;
    } else if (arg == "--trace") {
      trace_requested = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_requested = true;
      trace_path = arg.substr(std::string_view("--trace=").size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  argv[argc] = nullptr;

  // PREGEL_TRACE=1 enables tracing; any other non-empty value is the path.
  if (const char* v = std::getenv("PREGEL_TRACE"); v != nullptr && *v != '\0' && std::string_view(v) != "0") {
    trace_requested = true;
    if (std::string_view(v) != "1" && trace_path.empty()) trace_path = v;
  }
  if (!trace_requested) return;

  const std::string name = program_stem(argv[0]);
  trace::TraceConfig cfg;
  cfg.spans = true;
  cfg.counters = true;
  cfg.process_name = name;
  trace::Tracer::instance().configure(cfg);
  g_trace_path = trace_path.empty()
                     ? (std::filesystem::path(env().results_dir) /
                        ("TRACE_" + name + ".json"))
                           .string()
                     : trace_path;
  std::atexit(flush_trace);
}

std::size_t repetitions(std::size_t normal) { return env().smoke ? 1 : normal; }

const Graph& dataset(const std::string& short_name) {
  static std::unordered_map<std::string, Graph> cache;
  auto it = cache.find(short_name);
  if (it == cache.end()) {
    it = cache.emplace(short_name, dataset_analog(short_name, env().scale_div, env().seed))
             .first;
  }
  return it->second;
}

cloud::VmSpec experiment_vm(const ExperimentEnv& e) {
  // Calibration (see EXPERIMENTS.md): at scale_div=10, the BC workload on
  // the WG analog peaks at ~9.5 MiB of modeled worker memory per concurrent
  // root; a 320 MiB envelope puts the paper's regime in reach — swaths of
  // ~40 roots spill into virtual memory (restart at 1.5x = 480 MiB), while
  // the heuristics' 6/7 target (~274 MiB) admits swaths of ~25.
  constexpr double kRamAtDiv10 = 320.0 * 1024 * 1024;
  const double ram = kRamAtDiv10 * (10.0 / static_cast<double>(e.scale_div));
  cloud::VmSpec vm = cloud::azure_large_2012();
  vm.ram = static_cast<Bytes>(ram);
  vm.name = "azure-large-2012/analog-div" + std::to_string(e.scale_div);
  return vm;
}

Bytes memory_target(const cloud::VmSpec& vm) {
  return static_cast<Bytes>(static_cast<double>(vm.ram) * 6.0 / 7.0);
}

MemGovernorConfig default_governor() {
  MemGovernorConfig g;
  g.enabled = true;
  g.soft_watermark = 0.85;
  g.hard_watermark = 1.0;
  g.spill_enabled = true;
  g.shed_enabled = true;
  return g;
}

ClusterConfig make_cluster(const ExperimentEnv& e, std::uint32_t partitions,
                           std::uint32_t workers) {
  ClusterConfig c;
  c.num_partitions = partitions;
  c.initial_workers = workers;
  c.vm = experiment_vm(e);
  return c;
}

std::vector<VertexId> pick_roots(const Graph& g, std::size_t count, std::uint64_t seed) {
  PREGEL_CHECK(g.num_vertices() > 0);
  count = std::min<std::size_t>(count, g.num_vertices());
  Xoshiro256 rng(seed);
  std::unordered_set<VertexId> chosen;
  chosen.reserve(count * 2);
  std::vector<VertexId> roots;
  roots.reserve(count);
  while (roots.size() < count) {
    const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    if (chosen.insert(v).second) roots.push_back(v);
  }
  return roots;
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name, std::uint64_t seed) {
  if (name == "hash") return std::make_unique<HashPartitioner>(seed);
  if (name == "metis") {
    MultilevelPartitioner::Options o;
    o.seed = seed;
    return std::make_unique<MultilevelPartitioner>(o);
  }
  if (name == "stream")
    return std::make_unique<StreamingPartitioner>(StreamHeuristic::kLinearGreedy,
                                                  StreamOrder::kNatural, 1.0, seed);
  throw std::invalid_argument("make_partitioner: unknown partitioner " + name);
}

void write_csv(const std::string& name, const std::function<void(CsvWriter&)>& fill) {
  namespace fs = std::filesystem;
  fs::create_directories(env().results_dir);
  const fs::path path = fs::path(env().results_dir) / (name + ".csv");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path.string());
  CsvWriter w(out);
  fill(w);
  std::cout << "[csv] " << path.string() << " (" << w.rows_written() << " rows)\n";
}

void banner(const std::string& figure, const std::string& paper_claim) {
  std::cout << "\n=== " << figure << " ===\n";
  std::cout << "paper: " << paper_claim << "\n";
  std::cout << "setup: analogs at 1/" << env().scale_div << " scale, "
            << experiment_vm(env()).name << ", deterministic seed " << env().seed
            << "\n\n";
}

Seconds extrapolate_total_time(const JobMetrics& metrics, std::size_t roots_run,
                               std::size_t roots_total) {
  PREGEL_CHECK(roots_run > 0);
  const Seconds per_root = (metrics.total_time - metrics.setup_time) /
                           static_cast<double>(roots_run);
  return metrics.setup_time + per_root * static_cast<double>(roots_total);
}

}  // namespace pregel::harness
