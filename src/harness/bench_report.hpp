// Machine-readable bench reports: the repo's perf trajectory.
//
// Every bench binary can fold its wall-clock repetitions and counter totals
// into a BENCH_<name>.json file (schema pregelpp-bench-v1) next to its CSV.
// CI's bench-smoke job archives these per commit and gates on regressions,
// which is what makes the ROADMAP's "fast as the hardware allows" goal
// enforceable instead of aspirational.
//
// Schema (stable; bench/check_regression.py and external dashboards parse it):
//   {
//     "schema": "pregelpp-bench-v1",
//     "name": "<bench name>",
//     "git_sha": "<rev-parse at configure time>",
//     "build_type": "<CMAKE_BUILD_TYPE>",
//     "series": [
//       { "name": "<series>", "repetitions": N,
//         "wall_seconds": { "median": s, "p90": s, "min": s, "max": s,
//                           "mean": s, "samples": [s, ...] },
//         "counters": { "<key>": value, ... } }
//     ],
//     "counters": { "<perf counter>": total, ... }
//   }
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pregel::harness {

/// Git SHA the build was configured at ("unknown" outside a git checkout).
std::string build_git_sha();

/// CMAKE_BUILD_TYPE the binary was compiled under.
std::string build_type();

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Record one repetition's wall time for a named series.
  void add_sample(const std::string& series, double wall_seconds);

  /// Attach a per-series counter (throughput, items/s, message totals...).
  void set_series_counter(const std::string& series, const std::string& key,
                          double value);

  /// Attach a report-level counter total.
  void set_counter(const std::string& key, double value);

  /// Fold the process tracer's perf-counter totals (messages, bytes, queue
  /// ops, retries...) into the report-level counters.
  void include_trace_counters();

  void write(std::ostream& out) const;
  /// Write to `path` (creating parent directories) and log the location.
  void write_file(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> samples;
    std::vector<std::pair<std::string, double>> counters;
  };
  Series& series(const std::string& name);

  std::string name_;
  std::vector<Series> series_;
  std::vector<std::pair<std::string, double>> counters_;
};

}  // namespace pregel::harness
