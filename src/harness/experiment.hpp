// Shared experiment scaffolding for the bench binaries.
//
// Every bench reproduces one table or figure of the paper on the dataset
// analogs. This module centralizes: environment knobs (scale, quick mode,
// results directory), the calibrated experiment cluster (RAM envelope that
// recreates the paper's 7 GB / 6 GB-target regime at analog scale), dataset
// caching, root selection, partitioner construction, and CSV emission.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"
#include "util/csv.hpp"

namespace pregel::harness {

struct ExperimentEnv {
  /// Dataset reduction factor vs the paper's graphs (PREGEL_SCALE_DIV, default 10).
  unsigned scale_div = 10;
  /// PREGEL_QUICK=1: much smaller graphs / fewer roots for smoke runs.
  bool quick = false;
  /// --smoke / PREGEL_SMOKE=1: CI-sized runs — implies quick, shrinks the
  /// datasets a further 2x (scale_div 100 unless overridden), and callers
  /// with repetition loops drop to 1 repetition.
  bool smoke = false;
  /// Where CSVs land (PREGEL_RESULTS_DIR, default "results").
  std::string results_dir = "results";
  /// Base RNG seed (PREGEL_SEED, default 2013 — the year of the paper).
  std::uint64_t seed = 2013;
};

/// Read the environment once per process.
const ExperimentEnv& env();

/// Shared bench-driver entry point; call first in main(), before env() or
/// dataset(). Strips the flags every driver understands from argv:
///   --smoke          CI smoke mode (see ExperimentEnv::smoke)
///   --trace[=path]   record a Chrome trace-event timeline + counter summary,
///                    written at exit to `path` (default
///                    results_dir/TRACE_<program>.json, counters alongside
///                    as *_counters.json). PREGEL_TRACE=1|path is equivalent.
/// Unrecognized arguments are left in place for the driver.
void init(int& argc, char** argv);

/// Repetition count for timing loops: 1 in smoke mode, else `normal`.
std::size_t repetitions(std::size_t normal);

/// Generate (and cache per process) the analog of a paper dataset.
const Graph& dataset(const std::string& short_name);

/// The experiment worker VM: Azure Large with its RAM envelope scaled so the
/// analog-scale BC workload reproduces the paper's memory-pressure regime
/// (baseline swaths of a few tens of roots spill; ~6/7 of RAM is the
/// heuristics' target). Calibrated once for scale_div=10 and scaled
/// proportionally for other divisors; see EXPERIMENTS.md.
cloud::VmSpec experiment_vm(const ExperimentEnv& e);

/// Per-worker memory target handed to swath heuristics: 6/7 of VM RAM,
/// mirroring the paper's "6 GB threshold on 7 GB VMs".
Bytes memory_target(const cloud::VmSpec& vm);

/// Standard memory-pressure governor for the experiment regime: enabled,
/// soft watermark at 85% of the swath memory target, hard at 100%, spilling
/// and load shedding on. Pair with a SwathPolicy whose memory_target is set
/// (the governor budgets against it).
MemGovernorConfig default_governor();

/// Standard cluster: `partitions` logical partitions on `workers` VMs.
ClusterConfig make_cluster(const ExperimentEnv& e, std::uint32_t partitions,
                           std::uint32_t workers);

/// Deterministic traversal roots spread across the id space.
std::vector<VertexId> pick_roots(const Graph& g, std::size_t count, std::uint64_t seed);

/// Partitioner factory: "hash" | "metis" | "stream".
std::unique_ptr<Partitioner> make_partitioner(const std::string& name,
                                              std::uint64_t seed = 1);

/// Open results_dir/<name>.csv (creating the directory) and hand the writer
/// to `fill`; prints the file path to stdout.
void write_csv(const std::string& name, const std::function<void(CsvWriter&)>& fill);

/// Bench banner: figure id + what the paper reported.
void banner(const std::string& figure, const std::string& paper_claim);

/// Extrapolate a sampled root-parallel run to the full |V| roots, the way
/// the paper extrapolates its 4-hour runs: per-root time x total roots
/// (setup excluded from scaling).
Seconds extrapolate_total_time(const JobMetrics& metrics, std::size_t roots_run,
                               std::size_t roots_total);

}  // namespace pregel::harness
