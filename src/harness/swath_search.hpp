// Baseline swath-size search: the paper's Figure 4 baseline is "the largest
// swath size we could successfully complete ... while allowing them to spill
// to virtual memory" — found manually by the authors (40 for WG, 25 for CP).
// We automate that manual search: exponential probing followed by bisection,
// where "fails" means the cloud fabric restarts a thrashing worker VM.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"

namespace pregel::harness {

struct SwathSearchResult {
  std::uint32_t largest_completing = 0;  ///< the paper's baseline swath size
  std::uint32_t smallest_failing = 0;    ///< 0 if nothing failed up to the cap
  std::uint32_t probes = 0;
};

/// Probe BC runs with a single static swath of k of the given roots (the
/// first k) until the largest completing k in [1, roots.size()] is bracketed.
SwathSearchResult find_largest_completing_bc_swath(const Graph& g,
                                                   const ClusterConfig& cluster,
                                                   const Partitioning& parts,
                                                   const std::vector<VertexId>& roots);

/// Same search, memoized in the results directory (keyed by dataset name and
/// scale) so fig4/fig5 and friends don't each re-pay for the probe runs.
std::uint32_t cached_baseline_swath(const std::string& dataset_name, const Graph& g,
                                    const ClusterConfig& cluster, const Partitioning& parts,
                                    const std::vector<VertexId>& roots);

}  // namespace pregel::harness
