#include "harness/bench_report.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "runtime/trace.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

#ifndef PREGEL_GIT_SHA
#define PREGEL_GIT_SHA "unknown"
#endif
#ifndef PREGEL_BUILD_TYPE
#define PREGEL_BUILD_TYPE "unknown"
#endif

namespace pregel::harness {

std::string build_git_sha() { return PREGEL_GIT_SHA; }

std::string build_type() { return PREGEL_BUILD_TYPE; }

BenchReport::Series& BenchReport::series(const std::string& name) {
  for (Series& s : series_)
    if (s.name == name) return s;
  series_.push_back(Series{name, {}, {}});
  return series_.back();
}

void BenchReport::add_sample(const std::string& name, double wall_seconds) {
  series(name).samples.push_back(wall_seconds);
}

void BenchReport::set_series_counter(const std::string& name, const std::string& key,
                                     double value) {
  auto& counters = series(name).counters;
  for (auto& [k, v] : counters)
    if (k == key) {
      v = value;
      return;
    }
  counters.emplace_back(key, value);
}

void BenchReport::set_counter(const std::string& key, double value) {
  for (auto& [k, v] : counters_)
    if (k == key) {
      v = value;
      return;
    }
  counters_.emplace_back(key, value);
}

void BenchReport::include_trace_counters() {
  for (const auto& [name, value] : trace::Tracer::instance().counter_totals())
    set_counter(name, static_cast<double>(value));
}

void BenchReport::write(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("pregelpp-bench-v1");
  w.key("name").value(name_);
  w.key("git_sha").value(build_git_sha());
  w.key("build_type").value(build_type());
  w.key("series").begin_array();
  for (const Series& s : series_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("repetitions").value(static_cast<std::uint64_t>(s.samples.size()));
    Percentiles p;
    double min = 0.0, max = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < s.samples.size(); ++i) {
      p.add(s.samples[i]);
      min = i == 0 ? s.samples[i] : std::min(min, s.samples[i]);
      max = std::max(max, s.samples[i]);
      sum += s.samples[i];
    }
    w.key("wall_seconds").begin_object();
    w.key("median").value(p.median());
    w.key("p90").value(p.quantile(0.9));
    w.key("min").value(min);
    w.key("max").value(max);
    w.key("mean").value(s.samples.empty() ? 0.0
                                          : sum / static_cast<double>(s.samples.size()));
    w.key("samples").begin_array();
    for (const double x : s.samples) w.value(x);
    w.end_array();
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& [k, v] : s.counters) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters_) w.key(k).value(v);
  w.end_object();
  w.end_object();
  out << "\n";
}

void BenchReport::write_file(const std::string& path) const {
  namespace fs = std::filesystem;
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
  write(out);
  std::cout << "[bench] " << path << "\n";
}

}  // namespace pregel::harness
