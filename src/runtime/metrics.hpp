// Per-superstep, per-worker execution metrics.
//
// Every figure in the paper's evaluation is a projection of these records:
// messages per superstep (Figs 3, 7, 10-14), memory over time (Fig 5),
// compute+I/O vs barrier-wait split and utilization (Figs 9, 12), active
// vertices and per-superstep speedups (Fig 15), elastic time/cost
// projections (Fig 16).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace pregel {

/// One worker VM's activity and modeled timing within one superstep.
struct WorkerStepMetrics {
  std::uint64_t vertices_computed = 0;
  std::uint64_t messages_processed = 0;
  std::uint64_t messages_sent_local = 0;
  std::uint64_t messages_sent_remote = 0;
  /// Internal sequential steps run by subgraph-centric programs (relaxations,
  /// union-find ops, Gauss-Seidel updates). Zero under vertex-centric
  /// programs; priced via CostParams::cycles_per_subgraph_op.
  std::uint64_t subgraph_ops = 0;
  Bytes bytes_sent_remote = 0;
  Bytes bytes_received_remote = 0;
  Bytes memory_peak = 0;
  /// Message-buffer bytes the memory governor moved to blob storage this
  /// superstep; memory_peak is net of them (spilled = off-VM).
  Bytes spilled_bytes = 0;

  Seconds compute_time = 0.0;
  Seconds network_time = 0.0;
  /// span - (compute + network): idle time at the barrier waiting for the
  /// slowest worker. The paper's Figures 9/12 "Barrier Wait".
  Seconds barrier_wait = 0.0;

  std::uint64_t messages_sent_total() const noexcept {
    return messages_sent_local + messages_sent_remote;
  }
  Seconds busy_time() const noexcept { return compute_time + network_time; }
};

/// One superstep across the whole cluster.
struct SuperstepMetrics {
  std::uint64_t superstep = 0;
  std::uint32_t active_workers = 0;
  std::vector<WorkerStepMetrics> workers;  ///< size == active_workers

  std::uint64_t active_vertices = 0;  ///< vertices that computed
  std::uint64_t active_roots = 0;     ///< initiated-but-incomplete roots (root algos)
  /// Modeled wall time of the superstep: max over workers of busy time,
  /// plus the barrier/control overhead.
  Seconds span = 0.0;
  Seconds barrier_overhead = 0.0;

  /// Whether the direction-optimizing engine ran this superstep in pull
  /// mode. Decided from modeled frontier density only, so it is part of the
  /// bit-identity contract (same at any parallelism).
  bool pull_mode = false;
  /// Work-stealing activity among host lanes draining the frontier bags.
  /// These are wall-clock artifacts of the OS scheduler — two runs of the
  /// same job may steal differently — so they are exempt from the
  /// bit-identity contract and must never feed modeled times or costs.
  std::uint64_t steals = 0;
  std::uint64_t stolen_chunks = 0;

  std::uint64_t messages_sent_total() const noexcept;
  std::uint64_t messages_sent_remote() const noexcept;
  Bytes max_worker_memory() const noexcept;
  /// Paper's "VM utilization %": busy time over total worker-seconds.
  double utilization() const noexcept;
};

/// Whole-job rollup.
struct JobMetrics {
  std::vector<SuperstepMetrics> supersteps;

  Seconds total_time = 0.0;   ///< setup + sum of spans + recovery
  Seconds setup_time = 0.0;   ///< graph download/load/topology
  Usd cost_usd = 0.0;
  Seconds vm_seconds = 0.0;

  // Fault tolerance (checkpoint/recovery — Pregel's omitted-in-the-paper
  // extension, implemented here).
  std::uint32_t checkpoints_written = 0;
  Seconds checkpoint_time = 0.0;  ///< included in total_time
  std::uint32_t worker_failures = 0;
  Seconds recovery_time = 0.0;    ///< detection + reacquire + reload; in total_time
  std::uint64_t replayed_supersteps = 0;  ///< work re-executed after rollbacks
  /// Rollback scope this job ran under: "none", "full-rollback", "confined".
  std::string recovery_mode = "none";
  /// Wall time spent in confined-replay supersteps (healthy workers only
  /// re-deliver logged outboxes while the replacement VM recomputes);
  /// included in total_time.
  Seconds confined_replay_time = 0.0;
  /// Checkpoint uploads abandoned after exhausting the retry budget (the
  /// previous checkpoint stays in force).
  std::uint32_t checkpoint_failures = 0;
  /// Cross-zone replica rounds abandoned (the primary generation published
  /// fine; only the replica copies are missing). Distinct from
  /// checkpoint_failures, which counts lost primary rounds.
  std::uint32_t checkpoint_replica_failures = 0;

  // Generational checkpoint store (docs/FAULTS.md "Checkpoint store").
  std::uint32_t checkpoint_bases = 0;       ///< full generations published
  std::uint32_t checkpoint_deltas = 0;      ///< delta generations published
  Bytes checkpoint_base_bytes = 0;          ///< data-leg bytes in base rounds
  Bytes checkpoint_delta_bytes = 0;         ///< data-leg bytes in delta rounds
  std::uint32_t checkpoint_torn_manifests = 0;  ///< rounds lost at the publish step
  std::uint32_t checkpoint_torn_legs = 0;       ///< data legs that landed torn
  /// Restores that fell back past the newest generation, and the deepest
  /// fallback (published generations skipped) any restore needed.
  std::uint32_t checkpoint_fallbacks = 0;
  std::uint32_t checkpoint_fallback_depth_max = 0;
  std::uint32_t checkpoint_corrupt_legs = 0;      ///< torn/rotted legs hit on restore walks
  std::uint32_t checkpoint_corrupt_manifests = 0; ///< manifests failing chain verification
  std::uint32_t checkpoint_replica_reads = 0;     ///< restore legs served by the replica
  std::uint32_t scrub_passes = 0;
  std::uint64_t scrub_copies_verified = 0;
  std::uint32_t scrub_repairs = 0;          ///< rotted/torn copies re-replicated
  Seconds scrub_time = 0.0;                 ///< re-replication transfers; in total_time
  std::uint32_t ckpt_gc_generations = 0;    ///< generations retired by retention GC
  std::uint64_t ckpt_gc_delete_ops = 0;     ///< priced blob delete operations

  // Transient-fault injection and the retries masking it.
  std::uint64_t faults_injected = 0;   ///< transient queue/blob failures drawn
  std::uint64_t faults_masked = 0;     ///< of those, recovered by a retry
  std::uint64_t retries_attempted = 0; ///< extra attempts beyond each op's first
  Seconds retry_latency = 0.0;         ///< backoff + failed attempts; in total_time
  /// Barrier straggler timeouts that fired (slow worker's partitions
  /// speculatively re-executed on the least-loaded VM).
  std::uint32_t straggler_reexecutions = 0;

  /// Azure-queue operations used by the control plane (step tokens + barrier
  /// check-ins through the simulated queue service).
  std::uint64_t control_queue_ops = 0;

  // Frontier execution (bag work stealing + direction optimization; see
  // docs/MODEL.md). Steal counts are host-scheduling artifacts excluded from
  // the bit-identity contract; pull counts are modeled and covered by it.
  std::uint64_t work_steals = 0;        ///< lane-to-lane chunk transfers
  std::uint64_t stolen_chunks = 0;      ///< chunks moved across all steals
  std::uint64_t pull_supersteps = 0;    ///< supersteps executed in pull mode
  std::uint64_t direction_switches = 0; ///< push<->pull transitions

  /// Blob reads that returned a payload failing CRC32C verification; each is
  /// escalated to a retriable failure (and counted in faults_injected too).
  std::uint64_t blob_corruptions = 0;

  /// Queue operations that delivered a message failing CRC32C verification
  /// (data-plane analog of blob_corruptions; also in faults_injected).
  std::uint64_t queue_corruptions = 0;

  // Control-plane failures (job-manager failover, at-least-once barrier
  // protocol, correlated failure domains — see docs/FAULTS.md).
  /// Manager preemptions survived by a standby takeover, and the lease
  /// detection + takeover + manifest reload latency charged for them (folded
  /// into barrier overhead and total_time).
  std::uint32_t manager_failovers = 0;
  Seconds manager_failover_time = 0.0;
  /// Redelivered barrier check-ins deduped per (worker, superstep, epoch).
  std::uint64_t barrier_duplicates = 0;
  /// Stale-epoch barrier messages fenced off (zombie senders).
  std::uint64_t barrier_fenced = 0;
  /// Barriers where a worker never checked in and the manager charged a
  /// detection timeout instead of asserting.
  std::uint32_t barrier_detection_timeouts = 0;
  /// Whole availability zones preempted at once by the zone-outage stream.
  std::uint32_t zone_outages = 0;
  /// Cross-zone checkpoint replica uploads that completed.
  std::uint32_t checkpoint_replicas_written = 0;

  // Vertex migration / rebalancing (see docs/ELASTICITY.md).
  std::uint32_t migrations = 0;            ///< migration events executed
  std::uint64_t migrated_vertices = 0;     ///< vertices moved across all events
  Bytes migrated_bytes = 0;                ///< state+adjacency+inbox bytes moved
  Seconds migration_time = 0.0;            ///< transfer stalls; in total_time
  /// Sum over migration events of (per-VM active-vertex imbalance before −
  /// after), where imbalance = max/mean. Positive = plans helped.
  double rebalance_gain = 0.0;
  /// Governor hard-watermark episodes resolved by scaling out + migrating
  /// instead of shedding (no rewind).
  std::uint32_t governor_scale_outs = 0;
  /// Scale-in rung: VMs retired mid-job after the frontier collapsed, their
  /// partitions re-homed through the migration executor (docs/SCHEDULER.md).
  std::uint32_t scale_ins = 0;

  // Memory-pressure governor (degradation ladder; see docs/FAULTS.md).
  std::uint32_t governor_vetoes = 0;       ///< swath initiations skipped (soft watermark)
  std::uint32_t governor_swath_clamps = 0; ///< sizer proposals cut to headroom
  std::uint32_t governor_sheds = 0;        ///< rewinds that parked in-flight roots
  std::uint64_t governor_roots_parked = 0; ///< roots parked across all sheds
  std::uint32_t governor_spills = 0;       ///< VM-supersteps that spilled buffers
  Bytes governor_spill_bytes = 0;          ///< total bytes moved to blob storage
  Seconds governor_spill_time = 0.0;       ///< spill round-trip I/O; in total_time
  Seconds governor_shed_time = 0.0;        ///< shed rewind cost; in total_time
  /// Restart-level breaches absorbed by checkpoint restore + halved swath
  /// cap instead of failing the job.
  std::uint32_t governed_oom_episodes = 0;

  std::uint64_t total_messages() const noexcept;
  std::uint64_t total_supersteps() const noexcept { return supersteps.size(); }
  Bytes peak_worker_memory() const noexcept;
  Seconds total_barrier_wait() const noexcept;
  Seconds total_busy_time() const noexcept;
  /// busy / (busy + wait): aggregate utilization over the job.
  double utilization() const noexcept;
};

// ---------------------------------------------------------------------------
// Multi-job serving (src/sched/): per-job and pool-level rollups.

/// One admitted job's scheduling outcome, as seen from the pool. Everything
/// the engine modeled (values, JobMetrics) lives in the job's own result;
/// these rows add only what the *scheduler* caused — queue wait, preemptions,
/// slices — so the engine-side numbers stay bit-identical to a solo run.
struct JobRow {
  std::uint64_t id = 0;
  std::string name;
  std::string user;
  std::string state;          ///< "done", "failed", "rejected"
  Seconds arrival = 0.0;      ///< modeled submission time
  Seconds admitted = 0.0;     ///< first admission (== arrival when no queue)
  Seconds completed = 0.0;    ///< pool clock at completion
  Seconds wait_time = 0.0;    ///< queued + preempted time, outside the engine
  Seconds run_time = 0.0;     ///< the engine's modeled total_time
  Usd cost_usd = 0.0;         ///< the engine's modeled spend
  std::uint32_t workers_peak = 0;
  std::uint32_t workers_final = 0;  ///< after any scale-in retirements
  std::uint32_t preemptions = 0;
  std::uint32_t scale_ins = 0;
  std::uint64_t supersteps = 0;
  /// The job's advisory completion target (JobSpec::deadline; 0 = none).
  Seconds deadline = 0.0;
  /// True when a deadline was set and the job did not complete by it —
  /// finished late, failed, or was rejected. Observability only; no policy
  /// acts on it yet.
  bool missed_deadline = false;
};

/// Pool-level rollup of one scheduler run. `jobs_per_hour_per_usd` is the
/// serving layer's headline metric: completed jobs per modeled pool-hour per
/// dollar of modeled spend (engine costs + scheduler overheads).
struct PoolMetrics {
  std::string policy;               ///< queue policy name
  std::uint32_t pool_vms = 0;
  std::uint32_t jobs_submitted = 0;
  std::uint32_t jobs_completed = 0;
  std::uint32_t jobs_failed = 0;
  std::uint32_t jobs_rejected = 0;  ///< failed admission control
  /// Jobs with a deadline that did not complete by it (late, failed, or
  /// rejected). Sum of JobRow::missed_deadline.
  std::uint32_t deadline_misses = 0;
  std::uint32_t preemptions = 0;
  std::uint32_t resumes = 0;
  std::uint32_t scale_ins = 0;      ///< VMs reclaimed mid-job across all jobs
  Seconds makespan = 0.0;           ///< last completion − first arrival
  Seconds total_wait = 0.0;         ///< sum of JobRow::wait_time
  Usd total_cost_usd = 0.0;         ///< job spend + preemption overheads
  Seconds vm_seconds = 0.0;
  Seconds preemption_overhead = 0.0; ///< manifest persist/reload time, priced
  double jobs_per_hour_per_usd = 0.0;
  /// Busy VM-seconds over pool VM-seconds (pool_vms x makespan).
  double pool_utilization = 0.0;
};

}  // namespace pregel
