#include "runtime/mem_governor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pregel {

void MemGovernorConfig::validate() const {
  if (!enabled) return;
  if (!(soft_watermark > 0.0) || !std::isfinite(soft_watermark))
    throw std::invalid_argument("MemGovernorConfig: soft_watermark must be positive");
  if (!(hard_watermark >= soft_watermark) || !std::isfinite(hard_watermark))
    throw std::invalid_argument("MemGovernorConfig: hard_watermark must be >= soft_watermark");
  if (!(shed_fraction > 0.0) || shed_fraction > 1.0)
    throw std::invalid_argument("MemGovernorConfig: shed_fraction must be in (0, 1]");
}

void MemGovernor::reset(const MemGovernorConfig& cfg, Bytes target) {
  cfg.validate();
  cfg_ = cfg;
  enabled_ = cfg.enabled && target > 0;
  target_ = enabled_ ? target : 0;
  const auto scaled = [&](double f) {
    return static_cast<Bytes>(static_cast<double>(target_) * f);
  };
  soft_bytes_ = enabled_ ? scaled(cfg_.soft_watermark) : 0;
  hard_bytes_ = enabled_ ? scaled(cfg_.hard_watermark) : 0;
  last_pressure_ = 0.0;
  last_baseline_ = 0;
  per_root_bytes_ = 0.0;
  sheds_ = 0;
  scale_outs_ = 0;
  escalations_ = 0;
  swath_cap_ = std::numeric_limits<std::uint32_t>::max();
}

MemGovernor::Action MemGovernor::observe(const Observation& obs) {
  if (!enabled_) return Action::kNone;
  last_pressure_ = static_cast<double>(obs.unspilled_peak) / static_cast<double>(target_);
  last_baseline_ = obs.baseline;
  if (obs.active_roots > 0 && obs.unspilled_peak > obs.baseline) {
    const double incremental = static_cast<double>(obs.unspilled_peak - obs.baseline) /
                               static_cast<double>(obs.active_roots);
    per_root_bytes_ = std::max(per_root_bytes_, incremental);
  }

  const bool can_shed =
      cfg_.shed_enabled && obs.parkable_roots > 0 && sheds_ < cfg_.max_sheds;
  if (obs.restart_breach) {
    if (can_shed) return Action::kShed;
    if (escalations_ < cfg_.max_escalations) return Action::kEscalate;
    return Action::kGiveUp;
  }
  // Hard-watermark breach the spill path could not relieve: grow the cluster
  // when migration is wired and strictly cheaper than the shed rewind,
  // otherwise shed if possible, otherwise tolerate — the budget is a policy
  // target, not physical RAM.
  if (obs.post_spill_peak > hard_bytes_) {
    const bool can_grow = cfg_.scale_out_enabled && obs.can_scale_out &&
                          scale_outs_ < cfg_.max_scale_outs &&
                          obs.scale_out_cost_estimate < obs.shed_cost_estimate;
    if (can_grow) return Action::kScaleOut;
    if (can_shed) return Action::kShed;
  }
  return Action::kNone;
}

bool MemGovernor::veto_initiation() const noexcept {
  if (!enabled_) return false;
  return last_pressure_ >= cfg_.soft_watermark;
}

std::uint32_t MemGovernor::clamp_swath_size(std::uint32_t proposal) const noexcept {
  if (!enabled_) return proposal;
  std::uint32_t clamped = std::min(proposal, swath_cap_);
  if (per_root_bytes_ > 0.0 && soft_bytes_ > last_baseline_) {
    const double headroom = static_cast<double>(soft_bytes_ - last_baseline_);
    const auto fit = static_cast<std::uint64_t>(headroom / per_root_bytes_);
    clamped = static_cast<std::uint32_t>(std::min<std::uint64_t>(clamped, std::max<std::uint64_t>(fit, 1)));
  } else if (per_root_bytes_ > 0.0) {
    clamped = 1;  // baseline alone is already at the soft watermark
  }
  return std::max<std::uint32_t>(clamped, 1);
}

Bytes MemGovernor::spill_amount(Bytes vm_peak, Bytes spillable) const noexcept {
  if (!enabled_ || !cfg_.spill_enabled) return 0;
  if (vm_peak <= hard_bytes_) return 0;
  const Bytes excess_over_soft = vm_peak - soft_bytes_;  // hard >= soft
  return std::min(spillable, excess_over_soft);
}

std::uint32_t MemGovernor::park_count(std::uint32_t parkable) const noexcept {
  if (parkable == 0) return 0;
  const auto want = static_cast<std::uint32_t>(
      std::llround(static_cast<double>(parkable) * cfg_.shed_fraction));
  return std::clamp<std::uint32_t>(want, 1, parkable);
}

void MemGovernor::on_escalated(std::uint32_t offending_swath_size) noexcept {
  ++escalations_;
  const std::uint32_t base = std::min(swath_cap_, std::max<std::uint32_t>(offending_swath_size, 1));
  swath_cap_ = std::max<std::uint32_t>(base / 2, 1);
}

}  // namespace pregel
