#include "runtime/trace.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace pregel::trace {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::configure(const TraceConfig& cfg) {
  reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    process_name_ = cfg.process_name;
    epoch_ = std::chrono::steady_clock::now();
  }
  spans_.store(cfg.spans, std::memory_order_relaxed);
  counters_.store(cfg.counters, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Per-thread cached buffer pointer. ThreadBuffers are never deallocated
  // (reset() only clears their event vectors), so a cached pointer stays
  // valid for the life of the process even across configure()/reset().
  static thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<std::uint32_t>(buffers_.size());
    t_buffer = buf.get();
    buffers_.push_back(std::move(buf));
  }
  return *t_buffer;
}

void Tracer::complete(std::string name, const char* cat, std::uint64_t start_ns,
                      std::uint64_t end_ns, std::string args_json) {
  if (!spans_on()) return;
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = 'X';
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.counter_value = 0;
  e.args = std::move(args_json);
  local_buffer().events.push_back(std::move(e));
}

void Tracer::instant(std::string name, const char* cat, std::string args_json) {
  if (!spans_on()) return;
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = 'i';
  e.ts_ns = now_ns();
  e.dur_ns = 0;
  e.counter_value = 0;
  e.args = std::move(args_json);
  local_buffer().events.push_back(std::move(e));
}

void Tracer::counter_sample(std::string name, std::uint64_t value) {
  if (!spans_on()) return;
  Event e;
  e.name = std::move(name);
  e.cat = "counter";
  e.phase = 'C';
  e.ts_ns = now_ns();
  e.dur_ns = 0;
  e.counter_value = value;
  local_buffer().events.push_back(std::move(e));
}

void Tracer::virtual_complete(std::string name, const char* cat, std::uint32_t track,
                              double ts_us, double dur_us, std::string args_json) {
  if (!spans_on()) return;
  std::lock_guard<std::mutex> lock(mu_);
  virtual_events_.push_back(VirtualEvent{std::move(name), cat, 'X', track, ts_us,
                                         dur_us < 0.0 ? 0.0 : dur_us, 0.0,
                                         std::move(args_json)});
}

void Tracer::virtual_instant(std::string name, const char* cat, double ts_us,
                             std::string args_json) {
  if (!spans_on()) return;
  std::lock_guard<std::mutex> lock(mu_);
  virtual_events_.push_back(
      VirtualEvent{std::move(name), cat, 'i', 0, ts_us, 0.0, 0.0, std::move(args_json)});
}

void Tracer::virtual_counter(std::string name, double ts_us, double value) {
  if (!spans_on()) return;
  std::lock_guard<std::mutex> lock(mu_);
  virtual_events_.push_back(
      VirtualEvent{std::move(name), "counter", 'C', 0, ts_us, 0.0, value, {}});
}

void Tracer::name_virtual_track(std::uint32_t track, std::string name) {
  if (!spans_on()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [t, n] : virtual_track_names_)
    if (t == track) {
      n = std::move(name);
      return;
    }
  virtual_track_names_.emplace_back(track, std::move(name));
}

Counter& Tracer::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_store_)
    if (c->name_ == name) return *c;
  counters_store_.push_back(std::unique_ptr<Counter>(new Counter(name)));
  return *counters_store_.back();
}

std::vector<std::pair<std::string, std::uint64_t>> Tracer::counter_totals() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_store_.size());
    for (const auto& c : counters_store_)
      if (c->value() != 0) out.emplace_back(c->name_, c->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Tracer::write_event_json(std::ostream& out, const Event& e, std::uint32_t tid,
                              bool& first) const {
  if (!first) out << ",\n";
  first = false;
  JsonWriter w(out);
  w.begin_object();
  w.key("name").value(e.name);
  w.key("cat").value(e.cat);
  w.key("ph").value(std::string_view(&e.phase, 1));
  w.key("pid").value(std::uint64_t{1});
  w.key("tid").value(std::uint64_t{tid});
  // Chrome trace timestamps are microseconds; keep sub-microsecond precision.
  w.key("ts").value(static_cast<double>(e.ts_ns) / 1000.0);
  if (e.phase == 'X') w.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
  if (e.phase == 'i') w.key("s").value("t");
  if (e.phase == 'C') {
    w.key("args").begin_object();
    w.key("value").value(e.counter_value);
    w.end_object();
  } else if (!e.args.empty()) {
    w.key("args").raw(e.args);
  }
  w.end_object();
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Process/thread metadata so Perfetto labels the tracks.
  auto metadata = [&](const char* what, std::uint32_t pid, std::uint32_t tid,
                      const std::string& label, bool thread_level) {
    if (!first) out << ",\n";
    first = false;
    JsonWriter w(out);
    w.begin_object();
    w.key("name").value(what);
    w.key("ph").value("M");
    w.key("pid").value(std::uint64_t{pid});
    if (thread_level) w.key("tid").value(std::uint64_t{tid});
    w.key("args").begin_object();
    w.key("name").value(label);
    w.end_object();
    w.end_object();
  };
  metadata("process_name", 1, 0, process_name_ + " (host)", false);
  metadata("process_name", kVirtualPid, 0, process_name_ + " (modeled cluster)", false);
  for (const auto& buf : buffers_)
    metadata("thread_name", 1, buf->tid, "host thread " + std::to_string(buf->tid), true);
  for (const auto& [track, label] : virtual_track_names_)
    metadata("thread_name", kVirtualPid, track, label, true);

  for (const auto& buf : buffers_)
    for (const Event& e : buf->events) write_event_json(out, e, buf->tid, first);

  for (const VirtualEvent& e : virtual_events_) {
    if (!first) out << ",\n";
    first = false;
    JsonWriter w(out);
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.cat);
    w.key("ph").value(std::string_view(&e.phase, 1));
    w.key("pid").value(std::uint64_t{kVirtualPid});
    w.key("tid").value(std::uint64_t{e.track});
    w.key("ts").value(e.ts_us);
    if (e.phase == 'X') w.key("dur").value(e.dur_us);
    if (e.phase == 'i') w.key("s").value("p");
    if (e.phase == 'C') {
      w.key("args").begin_object();
      w.key("value").value(e.counter_value);
      w.end_object();
    } else if (!e.args.empty()) {
      w.key("args").raw(e.args);
    }
    w.end_object();
  }
  out << "\n]}\n";
}

void Tracer::write_counter_summary(std::ostream& out) const {
  const auto totals = counter_totals();
  JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("pregelpp-counters-v1");
  w.key("counters").begin_object();
  for (const auto& [name, value] : totals) w.key(name).value(value);
  w.end_object();
  w.end_object();
  out << "\n";
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = virtual_events_.size();
  for (const auto& buf : buffers_) n += buf->events.size();
  return n;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) buf->events.clear();
  virtual_events_.clear();
  virtual_track_names_.clear();
  for (auto& c : counters_store_) c->value_.store(0, std::memory_order_relaxed);
}

void Span::start(const char* name, const char* cat) {
  name_ = name;
  cat_ = cat;
  start_ns_ = Tracer::instance().now_ns();
}

void Span::finish() {
  Tracer& t = Tracer::instance();
  t.complete(name_, cat_, start_ns_, t.now_ns(), std::move(args_));
}

}  // namespace pregel::trace
