// Metrics export: dump a JobMetrics record as CSV (one row per worker per
// superstep plus a summary row stream) so any run — bench, example, or user
// job — can be replotted outside the simulator.
#pragma once

#include <ostream>

#include "runtime/metrics.hpp"

namespace pregel {

/// Per-superstep, per-worker long-format CSV:
/// superstep,worker,vertices,msgs_processed,msgs_local,msgs_remote,
/// bytes_sent,bytes_recv,memory_peak,compute_s,network_s,wait_s,spilled_bytes
void write_worker_metrics_csv(const JobMetrics& metrics, std::ostream& out);

/// Per-superstep rollup CSV:
/// superstep,workers,active_vertices,active_roots,messages,remote_messages,
/// span_s,barrier_s,max_memory,utilization
void write_superstep_metrics_csv(const JobMetrics& metrics, std::ostream& out);

/// One-row fault-tolerance rollup CSV:
/// recovery_mode,checkpoints,checkpoint_failures,failures,replayed_supersteps,
/// recovery_s,confined_replay_s,faults_injected,faults_masked,
/// retries_attempted,retry_latency_s,straggler_reexecutions,blob_corruptions,
/// queue_corruptions
void write_fault_metrics_csv(const JobMetrics& metrics, std::ostream& out);

/// One-row memory-governor rollup CSV:
/// vetoes,swath_clamps,sheds,roots_parked,spills,spill_bytes,spill_time_s,
/// shed_time_s,governed_oom_episodes,scale_outs
void write_governor_metrics_csv(const JobMetrics& metrics, std::ostream& out);

/// One-row vertex-migration rollup CSV:
/// migrations,migrated_vertices,migrated_bytes,migration_time_s,rebalance_gain
void write_migration_metrics_csv(const JobMetrics& metrics, std::ostream& out);

/// One-line key=value job summary (human- and grep-friendly).
void write_job_summary(const JobMetrics& metrics, std::ostream& out);

/// Per-job scheduling rows of one pool run (multi-job serving; src/sched/):
/// policy,job,name,user,state,arrival_s,admitted_s,completed_s,wait_s,run_s,
/// cost_usd,workers_peak,workers_final,preemptions,scale_ins,supersteps
void write_pool_metrics_csv(const PoolMetrics& pool, const std::vector<JobRow>& jobs,
                            std::ostream& out);

/// One-line key=value pool summary, jobs_per_hour_per_usd included.
void write_pool_summary(const PoolMetrics& pool, std::ostream& out);

}  // namespace pregel
