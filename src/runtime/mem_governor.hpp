// Per-worker memory-pressure governor: the graceful-degradation ladder that
// keeps the swath machinery inside its memory budget at runtime.
//
// The paper's swath-size heuristics (§IV) exist because buffering too many
// concurrent traversals overwhelms worker memory — but the sampling and
// adaptive controllers *predict* footprints and can overshoot, and on a real
// cloud an overshoot kills the job. The governor closes that loop. It tracks
// the modeled per-VM resident peak (graph + frontier state + inboxes +
// outboxes, the same accounting the sizers see) against
// `SwathPolicy::memory_target` and reacts in escalating rungs:
//
//   1. soft watermark — veto new swath initiations (backpressure into the
//      InitiationPolicy) and clamp the sizer's next-swath estimate to the
//      measured per-root headroom;
//   2. hard watermark — shed load: spill message buffers to blob storage
//      (I/O charged to the cost model) and park the newest in-flight roots,
//      rewinding to the last checkpoint so the parked roots replay later;
//   3. breach despite shedding (the fabric's restart threshold trips) —
//      escalate to a checkpoint restore with a halved swath-size cap,
//      recorded as a governed-OOM episode instead of a job failure.
//
// The governor itself is pure decision logic — deterministic, engine-agnostic
// and allocation-free — so the engine stays the single owner of simulation
// state and the ladder is unit-testable in isolation. All governor work
// happens at barriers; the per-message hot path never consults it.
#pragma once

#include <cstdint>
#include <limits>

#include "util/units.hpp"

namespace pregel {

/// Tuning knobs for the memory-pressure governor. Defaults mirror the
/// paper's 6/7-of-RAM budget discipline: back off at 85% of the target,
/// shed at 100%. Disabled by default — existing runs are bit-identical.
struct MemGovernorConfig {
  bool enabled = false;

  /// Fraction of the memory target at which new swath initiations are
  /// vetoed and sizer proposals are clamped to measured headroom.
  double soft_watermark = 0.85;

  /// Fraction of the memory target above which the governor sheds load
  /// (spills message buffers, parks the newest in-flight roots).
  double hard_watermark = 1.0;

  /// Rung-2 relief toggles: spill message buffers to blob storage / park
  /// newest in-flight roots. Both default on; turning both off reduces the
  /// governor to soft-watermark backpressure only.
  bool spill_enabled = true;
  bool shed_enabled = true;

  /// Fraction of the parkable (initiated since the last checkpoint, still
  /// in flight) roots parked per shed; always at least one root.
  double shed_fraction = 0.5;

  /// Rewinds are expensive, so both shed and escalate rungs are bounded.
  /// Past `max_sheds` a hard breach escalates; past `max_escalations` a
  /// breach that would restart the VM fails the job with a clear reason.
  std::uint32_t max_sheds = 32;
  std::uint32_t max_escalations = 8;

  /// Alternative hard-watermark rung: instead of shedding (a checkpoint
  /// rewind), scale the cluster out and migrate pressure off the hot VM —
  /// taken only when the engine reports the scale-out is possible and the
  /// cost model prices it below the shed rewind. Off by default.
  bool scale_out_enabled = false;
  std::uint32_t max_scale_outs = 4;

  /// Throws std::invalid_argument on nonsensical settings.
  void validate() const;
};

/// Decision core of the degradation ladder. The engine feeds it one
/// Observation per superstep (at the barrier) and acts on the returned
/// Action; everything else is accounting.
class MemGovernor {
 public:
  enum class Action {
    kNone,      ///< under control — no barrier-time intervention
    kShed,      ///< rewind to checkpoint, parking the newest in-flight roots
    kScaleOut,  ///< add a worker and migrate pressure off the hot VM (no rewind)
    kEscalate,  ///< governed-OOM: restore from checkpoint, halve swath cap
    kGiveUp,    ///< ladder exhausted — fail the job with a clear reason
  };

  /// Barrier-time snapshot of one superstep's memory behaviour.
  struct Observation {
    Bytes unspilled_peak = 0;   ///< max per-VM resident before spill relief
    Bytes post_spill_peak = 0;  ///< max per-VM resident after spilling
    Bytes baseline = 0;         ///< graph-resident bytes of the fullest VM
    std::uint64_t active_roots = 0;     ///< roots currently in flight
    std::uint32_t parkable_roots = 0;   ///< roots a shed could park
    bool restart_breach = false;        ///< fabric restart threshold tripped
    /// True when the engine could add a worker and migrate partitions to it
    /// (migration wired, spare partitions to spread).
    bool can_scale_out = false;
    /// Modeled cost of a shed rewind (checkpoint download + replay) vs. the
    /// cost of scaling out (VM spin-up + partition transfer). The governor
    /// only prefers kScaleOut when the latter is strictly cheaper.
    Seconds shed_cost_estimate = 0.0;
    Seconds scale_out_cost_estimate = 0.0;
  };

  MemGovernor() = default;

  /// Re-arm for a run. Disabled (every query becomes a no-op) unless
  /// cfg.enabled and `target` > 0.
  void reset(const MemGovernorConfig& cfg, Bytes target);

  bool enabled() const noexcept { return enabled_; }
  Bytes target() const noexcept { return target_; }
  Bytes soft_bytes() const noexcept { return soft_bytes_; }
  Bytes hard_bytes() const noexcept { return hard_bytes_; }

  /// Record one superstep and pick the ladder rung. Shedding needs parkable
  /// roots and remaining shed budget; a restart-level breach with nothing
  /// left to shed escalates, and an exhausted ladder gives up. A hard-
  /// watermark breach that does NOT trip the fabric's restart threshold
  /// never escalates past shedding — the governor must not fail a job the
  /// cloud itself would have tolerated.
  Action observe(const Observation& obs);

  /// Rung 1: true while the last observed pressure is at/above the soft
  /// watermark — the engine then skips new swath initiations.
  bool veto_initiation() const noexcept;

  /// Rung 1: clamp a sizer proposal to the escalation cap and to the
  /// headroom below the soft watermark implied by the measured worst-case
  /// per-root footprint. Never returns 0.
  std::uint32_t clamp_swath_size(std::uint32_t proposal) const noexcept;

  /// Rung 2 (spill): bytes to move to blob storage for a VM whose resident
  /// peak is `vm_peak` given at most `spillable` bytes of message buffers —
  /// enough to fall back to the soft watermark, triggered only above the
  /// hard one.
  Bytes spill_amount(Bytes vm_peak, Bytes spillable) const noexcept;

  /// Rung 2 (shed): how many of `parkable` newest roots one shed parks.
  std::uint32_t park_count(std::uint32_t parkable) const noexcept;

  /// Bookkeeping hooks the engine calls after acting on observe().
  void on_shed() noexcept { ++sheds_; }
  void on_scale_out() noexcept { ++scale_outs_; }
  void on_escalated(std::uint32_t offending_swath_size) noexcept;

  std::uint32_t sheds() const noexcept { return sheds_; }
  std::uint32_t scale_outs() const noexcept { return scale_outs_; }
  std::uint32_t escalations() const noexcept { return escalations_; }

  /// Swath-size ceiling imposed by governed-OOM escalations (halved per
  /// episode); unbounded until the first escalation.
  std::uint32_t swath_cap() const noexcept { return swath_cap_; }

  /// Unspilled peak / target from the most recent observation.
  double last_pressure() const noexcept { return last_pressure_; }

 private:
  MemGovernorConfig cfg_;
  bool enabled_ = false;
  Bytes target_ = 0;
  Bytes soft_bytes_ = 0;
  Bytes hard_bytes_ = 0;
  double last_pressure_ = 0.0;
  Bytes last_baseline_ = 0;
  /// Worst observed incremental resident bytes per in-flight root; feeds the
  /// headroom clamp. Measured, not predicted — this is what makes the clamp
  /// robust to a stale sizer baseline after recovery.
  double per_root_bytes_ = 0.0;
  std::uint32_t sheds_ = 0;
  std::uint32_t scale_outs_ = 0;
  std::uint32_t escalations_ = 0;
  std::uint32_t swath_cap_ = std::numeric_limits<std::uint32_t>::max();
};

}  // namespace pregel
