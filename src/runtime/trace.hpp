// Structured tracing + perf-counter registry for the whole stack.
//
// Two recording planes, independently switchable through TraceConfig:
//
//   Spans/instants — wall-clock timeline events captured into per-thread
//   buffers (one steady_clock read at span begin and one at end; no locks
//   on the hot path after a thread's first event). Exported as Chrome
//   trace_event JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
//   Alongside the host-thread timeline, callers may emit events on *virtual*
//   tracks (explicit pid/tid/timestamps): the engine uses this to draw the
//   modeled cluster — per-VM busy/barrier spans in simulated seconds, the
//   view Figures 9/12 of the paper are projections of.
//
//   Counters — named monotonic uint64 totals (messages, bytes, retries,
//   faults, queue ops). Registration is mutex-guarded but returns a
//   pointer-stable handle; hot paths cache the handle and pay one relaxed
//   atomic add. Exported as a flat JSON summary and consumed by the
//   bench-report layer.
//
// Disabled (the default) both planes cost one relaxed atomic load per call
// site — no allocation, no clock read, no locks — and recording changes no
// observable program state, so tracing on/off cannot perturb the engine's
// deterministic merge (tests/core/test_trace_determinism.cpp proves it
// bit-for-bit).
//
// Threading contract: events may be recorded concurrently from any number
// of threads. Export/reset/configure must not race with recording — call
// them from quiescent points (after Engine::run returns, after a pool
// parallel_for joined), which is the only place the exporters are used.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace pregel::trace {

struct TraceConfig {
  bool spans = false;     ///< record timeline events
  bool counters = false;  ///< record perf counters
  std::string process_name = "pregelpp";
};

/// A registered perf counter. Obtained once via Tracer::counter(name);
/// the reference stays valid for the life of the process (reset() zeroes
/// values but never deallocates), so call sites may cache it.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Tracer;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Tracer {
 public:
  /// Process-wide tracer (the engine, cloud services, and harness all feed
  /// one timeline; a per-run tracer would lose the cross-layer correlation
  /// the timeline exists to show).
  static Tracer& instance();

  /// Swap configuration and clear previously recorded events/counter values.
  void configure(const TraceConfig& cfg);

  bool spans_on() const noexcept { return spans_.load(std::memory_order_relaxed); }
  bool counters_on() const noexcept { return counters_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer epoch (configure() resets the epoch).
  std::uint64_t now_ns() const noexcept;

  // ---- timeline events (host threads; real wall clock) ---------------------

  /// Record a completed span [start_ns, end_ns] on the calling thread's track.
  /// `args_json` is either empty or a complete JSON object literal.
  void complete(std::string name, const char* cat, std::uint64_t start_ns,
                std::uint64_t end_ns, std::string args_json = {});

  /// Record an instantaneous event on the calling thread's track.
  void instant(std::string name, const char* cat, std::string args_json = {});

  /// Sample a counter track at the current time (Chrome 'C' event).
  void counter_sample(std::string name, std::uint64_t value);

  // ---- virtual tracks (modeled time; explicit placement) -------------------
  // The engine draws the simulated cluster here: pid kVirtualPid, tid =
  // worker VM index, timestamps in modeled microseconds.

  static constexpr std::uint32_t kVirtualPid = 2;

  void virtual_complete(std::string name, const char* cat, std::uint32_t track,
                        double ts_us, double dur_us, std::string args_json = {});
  void virtual_instant(std::string name, const char* cat, double ts_us,
                       std::string args_json = {});
  void virtual_counter(std::string name, double ts_us, double value);
  /// Label a virtual track (thread_name metadata for pid kVirtualPid).
  void name_virtual_track(std::uint32_t track, std::string name);

  // ---- counters ------------------------------------------------------------

  /// Find-or-register a counter; the returned reference never moves.
  Counter& counter(const std::string& name);
  /// Snapshot of all counters with non-zero totals, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counter_totals() const;

  // ---- export --------------------------------------------------------------

  /// Chrome trace_event JSON: {"traceEvents": [...], ...}. Includes
  /// process/thread metadata; events of one thread appear in record order.
  void write_chrome_trace(std::ostream& out) const;
  /// Flat counter summary: {"schema": ..., "counters": {name: total, ...}}.
  void write_counter_summary(std::ostream& out) const;

  std::size_t event_count() const;
  /// Drop all recorded events and zero every counter (handles stay valid).
  void reset();

 private:
  Tracer();

  struct Event {
    std::string name;
    const char* cat;        ///< static string supplied by the call site
    char phase;             ///< 'X' complete, 'i' instant, 'C' counter
    std::uint64_t ts_ns;    ///< host events: ns since epoch
    std::uint64_t dur_ns;   ///< 'X' only
    std::uint64_t counter_value;  ///< 'C' only
    std::string args;       ///< pre-rendered JSON object, may be empty
  };
  struct VirtualEvent {
    std::string name;
    const char* cat;
    char phase;
    std::uint32_t track;
    double ts_us, dur_us;
    double counter_value;
    std::string args;
  };
  struct ThreadBuffer {
    std::uint32_t tid = 0;  ///< dense id assigned at registration, stable per thread
    std::vector<Event> events;
  };

  ThreadBuffer& local_buffer();
  void write_event_json(std::ostream& out, const Event& e, std::uint32_t tid,
                        bool& first) const;

  std::atomic<bool> spans_{false};
  std::atomic<bool> counters_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::string process_name_ = "pregelpp";

  mutable std::mutex mu_;  ///< registration, counters registry, virtual events, export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<VirtualEvent> virtual_events_;
  std::vector<std::pair<std::uint32_t, std::string>> virtual_track_names_;
  std::vector<std::unique_ptr<Counter>> counters_store_;
};

/// Convenience accessors for guarded call sites.
inline bool spans_on() noexcept { return Tracer::instance().spans_on(); }
inline bool counters_on() noexcept { return Tracer::instance().counters_on(); }

/// Add to a counter by name; registry lookup per call, so use on cold or
/// per-superstep paths. Hot paths cache Tracer::counter() instead.
inline void add(const std::string& name, std::uint64_t delta) {
  Tracer& t = Tracer::instance();
  if (t.counters_on()) t.counter(name).add(delta);
}

/// RAII span: records a complete event on the calling thread's track from
/// construction to destruction. When tracing is disabled the constructor is
/// one relaxed load and the destructor a branch.
class Span {
 public:
  Span(const char* name, const char* cat) : active_(spans_on()) {
    if (active_) start(name, cat);
  }
  /// Span with one numeric argument, e.g. Span("compute", "superstep",
  /// "part", p). The args JSON is built only when tracing is on.
  Span(const char* name, const char* cat, const char* arg_key, std::uint64_t arg_value)
      : active_(spans_on()) {
    if (active_) {
      start(name, cat);
      args_ = std::string("{\"") + arg_key + "\":" + std::to_string(arg_value) + "}";
    }
  }
  ~Span() {
    if (active_) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void start(const char* name, const char* cat);
  void finish();

  bool active_;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::string args_;
};

}  // namespace pregel::trace
