#include "runtime/metrics_io.hpp"

#include "util/csv.hpp"

namespace pregel {

void write_worker_metrics_csv(const JobMetrics& metrics, std::ostream& out) {
  CsvWriter w(out);
  w.header({"superstep", "worker", "vertices_computed", "messages_processed",
            "messages_sent_local", "messages_sent_remote", "bytes_sent_remote",
            "bytes_received_remote", "subgraph_ops", "memory_peak_bytes",
            "compute_seconds", "network_seconds", "barrier_wait_seconds",
            "spilled_bytes"});
  for (const auto& sm : metrics.supersteps) {
    for (std::size_t i = 0; i < sm.workers.size(); ++i) {
      const auto& wm = sm.workers[i];
      w.field(sm.superstep)
          .field(static_cast<std::uint64_t>(i))
          .field(wm.vertices_computed)
          .field(wm.messages_processed)
          .field(wm.messages_sent_local)
          .field(wm.messages_sent_remote)
          .field(wm.bytes_sent_remote)
          .field(wm.bytes_received_remote)
          .field(wm.subgraph_ops)
          .field(wm.memory_peak)
          .field(wm.compute_time)
          .field(wm.network_time)
          .field(wm.barrier_wait)
          .field(wm.spilled_bytes)
          .end_row();
    }
  }
}

void write_superstep_metrics_csv(const JobMetrics& metrics, std::ostream& out) {
  CsvWriter w(out);
  w.header({"superstep", "workers", "active_vertices", "active_roots", "messages",
            "remote_messages", "span_seconds", "barrier_seconds", "max_worker_memory",
            "utilization", "pull_mode", "steals", "stolen_chunks"});
  for (const auto& sm : metrics.supersteps) {
    w.field(sm.superstep)
        .field(static_cast<std::uint64_t>(sm.active_workers))
        .field(sm.active_vertices)
        .field(sm.active_roots)
        .field(sm.messages_sent_total())
        .field(sm.messages_sent_remote())
        .field(sm.span)
        .field(sm.barrier_overhead)
        .field(sm.max_worker_memory())
        .field(sm.utilization())
        .field(static_cast<std::uint64_t>(sm.pull_mode ? 1 : 0))
        .field(sm.steals)
        .field(sm.stolen_chunks)
        .end_row();
  }
}

void write_fault_metrics_csv(const JobMetrics& metrics, std::ostream& out) {
  CsvWriter w(out);
  w.header({"recovery_mode", "checkpoints", "checkpoint_failures", "failures",
            "replayed_supersteps", "recovery_s", "confined_replay_s", "faults_injected",
            "faults_masked", "retries_attempted", "retry_latency_s",
            "straggler_reexecutions", "blob_corruptions", "queue_corruptions",
            "manager_failovers", "manager_failover_s", "barrier_duplicates",
            "barrier_fenced", "barrier_detection_timeouts", "zone_outages",
            "checkpoint_replicas", "checkpoint_replica_failures", "checkpoint_bases",
            "checkpoint_deltas", "checkpoint_base_bytes", "checkpoint_delta_bytes",
            "checkpoint_torn_manifests", "checkpoint_torn_legs", "checkpoint_fallbacks",
            "checkpoint_fallback_depth_max", "checkpoint_corrupt_legs",
            "checkpoint_corrupt_manifests", "checkpoint_replica_reads", "scrub_passes",
            "scrub_copies_verified", "scrub_repairs", "scrub_time_s",
            "ckpt_gc_generations", "ckpt_gc_delete_ops"});
  w.field(metrics.recovery_mode)
      .field(static_cast<std::uint64_t>(metrics.checkpoints_written))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_failures))
      .field(static_cast<std::uint64_t>(metrics.worker_failures))
      .field(metrics.replayed_supersteps)
      .field(metrics.recovery_time)
      .field(metrics.confined_replay_time)
      .field(metrics.faults_injected)
      .field(metrics.faults_masked)
      .field(metrics.retries_attempted)
      .field(metrics.retry_latency)
      .field(static_cast<std::uint64_t>(metrics.straggler_reexecutions))
      .field(metrics.blob_corruptions)
      .field(metrics.queue_corruptions)
      .field(static_cast<std::uint64_t>(metrics.manager_failovers))
      .field(metrics.manager_failover_time)
      .field(metrics.barrier_duplicates)
      .field(metrics.barrier_fenced)
      .field(static_cast<std::uint64_t>(metrics.barrier_detection_timeouts))
      .field(static_cast<std::uint64_t>(metrics.zone_outages))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_replicas_written))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_replica_failures))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_bases))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_deltas))
      .field(metrics.checkpoint_base_bytes)
      .field(metrics.checkpoint_delta_bytes)
      .field(static_cast<std::uint64_t>(metrics.checkpoint_torn_manifests))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_torn_legs))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_fallbacks))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_fallback_depth_max))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_corrupt_legs))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_corrupt_manifests))
      .field(static_cast<std::uint64_t>(metrics.checkpoint_replica_reads))
      .field(static_cast<std::uint64_t>(metrics.scrub_passes))
      .field(metrics.scrub_copies_verified)
      .field(static_cast<std::uint64_t>(metrics.scrub_repairs))
      .field(metrics.scrub_time)
      .field(static_cast<std::uint64_t>(metrics.ckpt_gc_generations))
      .field(metrics.ckpt_gc_delete_ops)
      .end_row();
}

void write_governor_metrics_csv(const JobMetrics& metrics, std::ostream& out) {
  CsvWriter w(out);
  w.header({"vetoes", "swath_clamps", "sheds", "roots_parked", "spills", "spill_bytes",
            "spill_time_s", "shed_time_s", "governed_oom_episodes", "scale_outs"});
  w.field(static_cast<std::uint64_t>(metrics.governor_vetoes))
      .field(static_cast<std::uint64_t>(metrics.governor_swath_clamps))
      .field(static_cast<std::uint64_t>(metrics.governor_sheds))
      .field(metrics.governor_roots_parked)
      .field(static_cast<std::uint64_t>(metrics.governor_spills))
      .field(metrics.governor_spill_bytes)
      .field(metrics.governor_spill_time)
      .field(metrics.governor_shed_time)
      .field(static_cast<std::uint64_t>(metrics.governed_oom_episodes))
      .field(static_cast<std::uint64_t>(metrics.governor_scale_outs))
      .end_row();
}

void write_migration_metrics_csv(const JobMetrics& metrics, std::ostream& out) {
  CsvWriter w(out);
  w.header({"migrations", "migrated_vertices", "migrated_bytes", "migration_time_s",
            "rebalance_gain", "scale_ins"});
  w.field(static_cast<std::uint64_t>(metrics.migrations))
      .field(metrics.migrated_vertices)
      .field(metrics.migrated_bytes)
      .field(metrics.migration_time)
      .field(metrics.rebalance_gain)
      .field(static_cast<std::uint64_t>(metrics.scale_ins))
      .end_row();
}

void write_pool_metrics_csv(const PoolMetrics& pool, const std::vector<JobRow>& jobs,
                            std::ostream& out) {
  CsvWriter w(out);
  w.header({"policy", "job", "name", "user", "state", "arrival_s", "admitted_s",
            "completed_s", "wait_s", "run_s", "cost_usd", "workers_peak",
            "workers_final", "preemptions", "scale_ins", "supersteps",
            "deadline_s", "missed_deadline"});
  for (const auto& j : jobs) {
    w.field(pool.policy)
        .field(j.id)
        .field(j.name)
        .field(j.user)
        .field(j.state)
        .field(j.arrival)
        .field(j.admitted)
        .field(j.completed)
        .field(j.wait_time)
        .field(j.run_time)
        .field(j.cost_usd)
        .field(static_cast<std::uint64_t>(j.workers_peak))
        .field(static_cast<std::uint64_t>(j.workers_final))
        .field(static_cast<std::uint64_t>(j.preemptions))
        .field(static_cast<std::uint64_t>(j.scale_ins))
        .field(j.supersteps)
        .field(j.deadline)
        .field(static_cast<std::uint64_t>(j.missed_deadline ? 1 : 0))
        .end_row();
  }
}

void write_pool_summary(const PoolMetrics& pool, std::ostream& out) {
  out << "policy=" << pool.policy
      << " pool_vms=" << pool.pool_vms
      << " submitted=" << pool.jobs_submitted
      << " completed=" << pool.jobs_completed
      << " failed=" << pool.jobs_failed
      << " rejected=" << pool.jobs_rejected
      << " deadline_misses=" << pool.deadline_misses
      << " preemptions=" << pool.preemptions
      << " resumes=" << pool.resumes
      << " scale_ins=" << pool.scale_ins
      << " makespan_s=" << pool.makespan
      << " total_wait_s=" << pool.total_wait
      << " total_cost_usd=" << pool.total_cost_usd
      << " vm_seconds=" << pool.vm_seconds
      << " preemption_overhead_s=" << pool.preemption_overhead
      << " jobs_per_hour_per_usd=" << pool.jobs_per_hour_per_usd
      << " pool_utilization=" << pool.pool_utilization << "\n";
}

void write_job_summary(const JobMetrics& metrics, std::ostream& out) {
  out << "supersteps=" << metrics.total_supersteps()
      << " messages=" << metrics.total_messages()
      << " total_time_s=" << metrics.total_time
      << " setup_time_s=" << metrics.setup_time
      << " cost_usd=" << metrics.cost_usd
      << " vm_seconds=" << metrics.vm_seconds
      << " peak_worker_memory=" << metrics.peak_worker_memory()
      << " utilization=" << metrics.utilization()
      << " checkpoints=" << metrics.checkpoints_written
      << " failures=" << metrics.worker_failures
      << " replayed_supersteps=" << metrics.replayed_supersteps
      << " recovery_mode=" << metrics.recovery_mode
      << " confined_replay_time_s=" << metrics.confined_replay_time
      << " faults_injected=" << metrics.faults_injected
      << " faults_masked=" << metrics.faults_masked
      << " retries_attempted=" << metrics.retries_attempted
      << " retry_latency_s=" << metrics.retry_latency
      << " straggler_reexecutions=" << metrics.straggler_reexecutions
      << " control_queue_ops=" << metrics.control_queue_ops
      << " blob_corruptions=" << metrics.blob_corruptions
      << " governor_vetoes=" << metrics.governor_vetoes
      << " governor_swath_clamps=" << metrics.governor_swath_clamps
      << " governor_sheds=" << metrics.governor_sheds
      << " governor_roots_parked=" << metrics.governor_roots_parked
      << " governor_spills=" << metrics.governor_spills
      << " governor_spill_bytes=" << metrics.governor_spill_bytes
      << " governed_oom_episodes=" << metrics.governed_oom_episodes
      << " queue_corruptions=" << metrics.queue_corruptions
      << " manager_failovers=" << metrics.manager_failovers
      << " manager_failover_time_s=" << metrics.manager_failover_time
      << " barrier_duplicates=" << metrics.barrier_duplicates
      << " barrier_fenced=" << metrics.barrier_fenced
      << " barrier_detection_timeouts=" << metrics.barrier_detection_timeouts
      << " zone_outages=" << metrics.zone_outages
      << " checkpoint_replicas=" << metrics.checkpoint_replicas_written
      << " checkpoint_replica_failures=" << metrics.checkpoint_replica_failures
      << " checkpoint_bases=" << metrics.checkpoint_bases
      << " checkpoint_deltas=" << metrics.checkpoint_deltas
      << " checkpoint_base_bytes=" << metrics.checkpoint_base_bytes
      << " checkpoint_delta_bytes=" << metrics.checkpoint_delta_bytes
      << " checkpoint_fallbacks=" << metrics.checkpoint_fallbacks
      << " checkpoint_fallback_depth_max=" << metrics.checkpoint_fallback_depth_max
      << " scrub_repairs=" << metrics.scrub_repairs
      << " ckpt_gc_delete_ops=" << metrics.ckpt_gc_delete_ops
      << " migrations=" << metrics.migrations
      << " migrated_vertices=" << metrics.migrated_vertices
      << " migrated_bytes=" << metrics.migrated_bytes
      << " migration_time_s=" << metrics.migration_time
      << " rebalance_gain=" << metrics.rebalance_gain
      << " governor_scale_outs=" << metrics.governor_scale_outs
      << " scale_ins=" << metrics.scale_ins
      << " work_steals=" << metrics.work_steals
      << " stolen_chunks=" << metrics.stolen_chunks
      << " pull_supersteps=" << metrics.pull_supersteps
      << " direction_switches=" << metrics.direction_switches << "\n";
}

}  // namespace pregel
