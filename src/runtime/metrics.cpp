#include "runtime/metrics.hpp"

#include <algorithm>

namespace pregel {

std::uint64_t SuperstepMetrics::messages_sent_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& w : workers) total += w.messages_sent_total();
  return total;
}

std::uint64_t SuperstepMetrics::messages_sent_remote() const noexcept {
  std::uint64_t total = 0;
  for (const auto& w : workers) total += w.messages_sent_remote;
  return total;
}

Bytes SuperstepMetrics::max_worker_memory() const noexcept {
  Bytes peak = 0;
  for (const auto& w : workers) peak = std::max(peak, w.memory_peak);
  return peak;
}

double SuperstepMetrics::utilization() const noexcept {
  Seconds busy = 0.0, total = 0.0;
  for (const auto& w : workers) {
    busy += w.busy_time();
    total += w.busy_time() + w.barrier_wait;
  }
  return total > 0.0 ? busy / total : 1.0;
}

std::uint64_t JobMetrics::total_messages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : supersteps) total += s.messages_sent_total();
  return total;
}

Bytes JobMetrics::peak_worker_memory() const noexcept {
  Bytes peak = 0;
  for (const auto& s : supersteps) peak = std::max(peak, s.max_worker_memory());
  return peak;
}

Seconds JobMetrics::total_barrier_wait() const noexcept {
  Seconds total = 0.0;
  for (const auto& s : supersteps)
    for (const auto& w : s.workers) total += w.barrier_wait;
  return total;
}

Seconds JobMetrics::total_busy_time() const noexcept {
  Seconds total = 0.0;
  for (const auto& s : supersteps)
    for (const auto& w : s.workers) total += w.busy_time();
  return total;
}

double JobMetrics::utilization() const noexcept {
  const Seconds busy = total_busy_time();
  const Seconds total = busy + total_barrier_wait();
  return total > 0.0 ? busy / total : 1.0;
}

}  // namespace pregel
