#include "partition/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pregel {

std::string to_string(StreamHeuristic h) {
  switch (h) {
    case StreamHeuristic::kRandom: return "random";
    case StreamHeuristic::kChunking: return "chunking";
    case StreamHeuristic::kBalanced: return "balanced";
    case StreamHeuristic::kGreedy: return "greedy";
    case StreamHeuristic::kLinearGreedy: return "ldg";
    case StreamHeuristic::kExpGreedy: return "exp-greedy";
  }
  return "?";
}

std::string to_string(StreamOrder o) {
  switch (o) {
    case StreamOrder::kNatural: return "natural";
    case StreamOrder::kRandom: return "random";
    case StreamOrder::kBfs: return "bfs";
  }
  return "?";
}

StreamingPartitioner::StreamingPartitioner(StreamHeuristic heuristic, StreamOrder order,
                                           double slack, std::uint64_t seed)
    : heuristic_(heuristic), order_(order), slack_(slack), seed_(seed) {
  PREGEL_CHECK_MSG(slack >= 1.0, "StreamingPartitioner: slack must be >= 1");
}

std::string StreamingPartitioner::name() const { return "stream-" + to_string(heuristic_); }

namespace {

std::vector<VertexId> stream_order(const Graph& g, StreamOrder order, std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> vs(n);
  std::iota(vs.begin(), vs.end(), VertexId{0});
  switch (order) {
    case StreamOrder::kNatural:
      break;
    case StreamOrder::kRandom: {
      Xoshiro256 rng(seed);
      for (VertexId i = n; i > 1; --i)
        std::swap(vs[i - 1], vs[rng.next_below(i)]);
      break;
    }
    case StreamOrder::kBfs: {
      // BFS from every unvisited vertex in id order; visited-order is the
      // stream. Matches the "breadth-first traversal" arrival model of
      // Stanton–Kliot.
      std::vector<bool> seen(n, false);
      std::vector<VertexId> out;
      out.reserve(n);
      std::vector<VertexId> queue;
      for (VertexId s = 0; s < n; ++s) {
        if (seen[s]) continue;
        seen[s] = true;
        queue.clear();
        queue.push_back(s);
        std::size_t head = 0;
        while (head < queue.size()) {
          const VertexId u = queue[head++];
          out.push_back(u);
          for (VertexId w : g.out_neighbors(u)) {
            if (!seen[w]) {
              seen[w] = true;
              queue.push_back(w);
            }
          }
        }
      }
      vs = std::move(out);
      break;
    }
  }
  return vs;
}

}  // namespace

Partitioning StreamingPartitioner::partition(const Graph& g, PartitionId num_parts) const {
  PREGEL_CHECK(num_parts > 0);
  const VertexId n = g.num_vertices();
  const double capacity =
      std::ceil(static_cast<double>(n) / static_cast<double>(num_parts)) * slack_;

  std::vector<PartitionId> assign(n, num_parts);  // num_parts == unassigned
  std::vector<double> size(num_parts, 0.0);
  std::vector<double> nbr_count(num_parts, 0.0);
  Xoshiro256 rng(seed_ ^ 0x5741544Bu);

  const auto order = stream_order(g, order_, seed_);
  PartitionId chunk_cursor = 0;

  for (VertexId v : order) {
    PartitionId chosen = 0;
    switch (heuristic_) {
      case StreamHeuristic::kRandom:
        chosen = static_cast<PartitionId>(rng.next_below(num_parts));
        break;
      case StreamHeuristic::kChunking: {
        while (size[chunk_cursor] >= capacity && chunk_cursor + 1 < num_parts) ++chunk_cursor;
        chosen = chunk_cursor;
        break;
      }
      case StreamHeuristic::kBalanced: {
        chosen = static_cast<PartitionId>(
            std::min_element(size.begin(), size.end()) - size.begin());
        break;
      }
      case StreamHeuristic::kGreedy:
      case StreamHeuristic::kLinearGreedy:
      case StreamHeuristic::kExpGreedy: {
        std::fill(nbr_count.begin(), nbr_count.end(), 0.0);
        for (VertexId u : g.out_neighbors(v))
          if (assign[u] < num_parts) nbr_count[assign[u]] += 1.0;
        double best = -1.0;
        chosen = 0;
        for (PartitionId p = 0; p < num_parts; ++p) {
          double score = nbr_count[p];
          if (heuristic_ == StreamHeuristic::kLinearGreedy) {
            score *= (1.0 - size[p] / capacity);
          } else if (heuristic_ == StreamHeuristic::kExpGreedy) {
            score *= (1.0 - std::exp(size[p] - capacity));
          } else {
            // plain greedy: hard capacity constraint
            if (size[p] >= capacity) score = -2.0;
          }
          // Ties break toward the smaller partition for balance.
          if (score > best || (score == best && size[p] < size[chosen])) {
            best = score;
            chosen = p;
          }
        }
        // All scores zero/negative: fall back to least-loaded.
        if (best <= 0.0) {
          chosen = static_cast<PartitionId>(
              std::min_element(size.begin(), size.end()) - size.begin());
        }
        break;
      }
    }
    assign[v] = chosen;
    size[chosen] += 1.0;
  }
  return {std::move(assign), num_parts};
}

}  // namespace pregel
