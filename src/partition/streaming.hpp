// Streaming (one-pass) partitioners after Stanton & Kliot, "Streaming Graph
// Partitioning for Large Distributed Graphs" (MSR-TR-2011-121) — reference
// [26] of the paper. Vertices arrive in a stream; each is assigned to a
// partition immediately using only the already-assigned portion of the graph.
//
// The paper's Figure 8 uses the best heuristic from that work — the
// "linear-weighted deterministic greedy" (LDG) — as its Streaming strategy.
// We implement the whole family so the ablation bench can sweep them.
#pragma once

#include <cstdint>
#include <string>

#include "partition/partitioner.hpp"

namespace pregel {

enum class StreamHeuristic {
  kRandom,        ///< uniformly random partition (baseline B1)
  kChunking,      ///< fill partitions in stream order (B2)
  kBalanced,      ///< always the currently smallest partition (B3)
  kGreedy,        ///< argmax |N(v) ∩ P_i|, ties -> smaller partition
  kLinearGreedy,  ///< LDG: argmax |N(v) ∩ P_i| * (1 - |P_i|/C)  [the paper's pick]
  kExpGreedy,     ///< exponential penalty: |N(v) ∩ P_i| * (1 - e^{|P_i|-C})
};

enum class StreamOrder {
  kNatural,  ///< vertex id order (what a loader reading blob storage sees)
  kRandom,   ///< random permutation
  kBfs,      ///< BFS order from vertex 0 (connected-first arrival)
};

std::string to_string(StreamHeuristic h);
std::string to_string(StreamOrder o);

class StreamingPartitioner final : public Partitioner {
 public:
  /// `slack` sets partition capacity C = ceil(n/k) * slack (LDG uses 1.0).
  explicit StreamingPartitioner(StreamHeuristic heuristic = StreamHeuristic::kLinearGreedy,
                                StreamOrder order = StreamOrder::kNatural,
                                double slack = 1.0, std::uint64_t seed = 42);

  Partitioning partition(const Graph& g, PartitionId num_parts) const override;
  std::string name() const override;

 private:
  StreamHeuristic heuristic_;
  StreamOrder order_;
  double slack_;
  std::uint64_t seed_;
};

}  // namespace pregel
