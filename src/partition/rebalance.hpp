// Vertex-migration planning: which vertices should move where.
//
// The paper's central negative result (§V) is that edge-cut-optimal
// partitioning can *slow down* traversal workloads: the frontier sweeps
// through one well-cut partition at a time, the BSP barrier makes the
// busiest worker set the pace, and the cut quality buys nothing while the
// per-superstep load imbalance costs everything. The fix examined here is
// live rebalancing — at a barrier, a MigrationPlanner looks at the
// *next-superstep active set* per worker and proposes vertex moves; the
// cloud-layer MigrationExecutor then prices and performs the transfer.
//
// Planners are pure functions of their signals (no hidden state, no RNG),
// so a plan is replayable from a trace. This module depends only on the
// graph and partitioner layers; everything cloud-priced lives in
// src/cloud/migration.*.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partitioner.hpp"

namespace pregel {

/// One planned move: `vertex` leaves partition `from` for partition `to`.
/// Moves are partition-level retargets — the executor derives the VM hop
/// from the placement map.
struct VertexMove {
  VertexId vertex = kInvalidVertex;
  PartitionId from = 0;
  PartitionId to = 0;
  friend bool operator==(const VertexMove&, const VertexMove&) = default;
};

struct MigrationPlan {
  std::vector<VertexMove> moves;
  bool empty() const noexcept { return moves.empty(); }
};

/// Everything a planner may look at. All pointers are non-owning views of
/// engine state, valid for the duration of the plan() call only.
struct RebalanceSignals {
  const Graph* graph = nullptr;
  /// Current home partition of every vertex (size = num_vertices).
  const std::vector<PartitionId>* part_of = nullptr;
  /// Partition -> worker VM placement (size = num_partitions).
  const std::vector<std::uint32_t>* placement = nullptr;
  std::uint32_t workers = 1;
  std::uint64_t superstep = 0;
  /// Monotonic version of the engine's vertex-location table; bumped on
  /// every applied migration and placement reset. Stateful planners (the
  /// cut-refine boundary cache, the meta-graph planner) key their caches on
  /// it: unchanged version + unchanged graph ⇒ part_of is unchanged.
  std::uint64_t location_version = 0;
  /// Per partition: vertices active in the *next* superstep, ascending ids.
  std::vector<std::vector<VertexId>> active;
};

/// max / mean of per-VM active-vertex counts (1.0 = perfectly balanced,
/// 0.0 when nothing is active). The quantity planners try to shrink and
/// JobMetrics::rebalance_gain is denominated in.
double active_imbalance(const RebalanceSignals& s);

/// Strategy interface. plan() must be deterministic in its signals.
class MigrationPlanner {
 public:
  virtual ~MigrationPlanner() = default;
  virtual MigrationPlan plan(const RebalanceSignals& s) = 0;
  /// Short label for traces/reports: "none", "activity-greedy", "cut-refine".
  virtual std::string name() const = 0;
};

/// Placebo: never moves anything. Lets call sites keep migration wiring in
/// place while measuring the unmigrated baseline.
class NoMigrationPlanner final : public MigrationPlanner {
 public:
  MigrationPlan plan(const RebalanceSignals&) override { return {}; }
  std::string name() const override { return "none"; }
};

/// Activity-greedy load balancing: repeatedly shift active vertices from the
/// busiest VM to the idlest until the per-VM active counts sit within
/// `tolerance` of the mean or the move budget runs out. Donor vertices are
/// taken highest-id-first from the donor VM's most-active partition and
/// retargeted to the receiver VM's least-active partition — a deterministic
/// choice that keeps each move batch contiguous in the active list.
class ActivityGreedyPlanner final : public MigrationPlanner {
 public:
  explicit ActivityGreedyPlanner(double tolerance = 0.2,
                                 std::uint64_t max_moves = 4096)
      : tolerance_(tolerance), max_moves_(max_moves) {}
  MigrationPlan plan(const RebalanceSignals& s) override;
  std::string name() const override { return "activity-greedy"; }

 private:
  double tolerance_;
  std::uint64_t max_moves_;
};

/// Edge-cut-aware refinement: for each active vertex, count neighbors per
/// partition and move it to the partition holding the most of them when
/// that beats staying home — the classic KL/FM gain step, restricted to the
/// active frontier and guarded so no receiving VM exceeds
/// (1 + balance_tolerance) x the mean active load. Trades some balance for
/// fewer remote messages; the planner the paper's §VII partition-quality
/// analysis argues for and its §V imbalance result argues against.
///
/// Per-vertex neighbor tallies are cached across consecutive barriers: while
/// the location table is unchanged (same graph, same `location_version`,
/// same part_of), a vertex active again reuses its cached (partition, count)
/// list instead of re-scanning its full adjacency. Any applied migration
/// bumps the version and drops the cache. Decisions and move order are
/// bit-identical with the cache hot or cold.
class EdgeCutRefinePlanner final : public MigrationPlanner {
 public:
  explicit EdgeCutRefinePlanner(std::uint64_t max_moves = 512,
                                double balance_tolerance = 0.25)
      : max_moves_(max_moves), balance_tolerance_(balance_tolerance) {}
  MigrationPlan plan(const RebalanceSignals& s) override;
  std::string name() const override { return "cut-refine"; }

  /// Adjacency scans avoided via the tally cache (observability for tests).
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }

 private:
  std::uint64_t max_moves_;
  double balance_tolerance_;

  // Tally cache, valid while (graph, location_version, part_of) match.
  const Graph* cached_graph_ = nullptr;
  std::uint64_t cached_version_ = 0;
  bool cache_valid_ = false;
  std::vector<PartitionId> cached_part_of_;
  std::unordered_map<VertexId, std::vector<std::pair<PartitionId, std::uint32_t>>>
      tallies_;
  std::uint64_t cache_hits_ = 0;
};

/// Migration configuration carried on ClusterConfig. Migration is off
/// unless a planner is installed; `period` consults the planner every k
/// barriers (0 = only at scaling/governor events); `on_scaling` replans
/// after every worker-count change.
struct MigrationOptions {
  std::shared_ptr<MigrationPlanner> planner;
  std::uint64_t period = 0;
  bool on_scaling = true;
  bool enabled() const noexcept { return planner != nullptr; }
};

}  // namespace pregel
