#include "partition/rebalance.hpp"

#include <algorithm>
#include <cstddef>

#include "util/check.hpp"

namespace pregel {

namespace {

/// Per-VM active-vertex counts under the signal's placement.
std::vector<std::uint64_t> vm_active_counts(const RebalanceSignals& s) {
  std::vector<std::uint64_t> counts(s.workers, 0);
  for (std::size_t p = 0; p < s.active.size(); ++p) {
    const std::uint32_t vm = (*s.placement)[p];
    PREGEL_DCHECK(vm < s.workers);
    counts[vm] += s.active[p].size();
  }
  return counts;
}

}  // namespace

double active_imbalance(const RebalanceSignals& s) {
  const auto counts = vm_active_counts(s);
  std::uint64_t total = 0, peak = 0;
  for (const auto c : counts) {
    total += c;
    peak = std::max(peak, c);
  }
  if (total == 0 || counts.empty()) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(counts.size());
  return static_cast<double>(peak) / mean;
}

MigrationPlan ActivityGreedyPlanner::plan(const RebalanceSignals& s) {
  MigrationPlan out;
  if (s.workers < 2 || s.active.empty()) return out;

  auto vm_counts = vm_active_counts(s);
  std::uint64_t total = 0;
  for (const auto c : vm_counts) total += c;
  if (total == 0) return out;
  const double mean = static_cast<double>(total) / static_cast<double>(s.workers);

  // Mutable working copy of per-partition active counts; the vertex ids we
  // emit are read from the backs of the (ascending) active lists, so
  // consuming `taken[p]` entries from the back is a pure index computation.
  std::vector<std::uint64_t> part_counts(s.active.size());
  std::vector<std::uint64_t> taken(s.active.size(), 0);
  for (std::size_t p = 0; p < s.active.size(); ++p) part_counts[p] = s.active[p].size();

  std::uint64_t budget = max_moves_;
  // Each round rebalances the current worst donor/receiver pair; bounded by
  // the move budget and a round cap so pathological signals cannot spin.
  for (std::uint32_t round = 0; round < 4 * s.workers && budget > 0; ++round) {
    std::uint32_t donor = 0, recv = 0;
    for (std::uint32_t v = 1; v < s.workers; ++v) {
      if (vm_counts[v] > vm_counts[donor]) donor = v;
      if (vm_counts[v] < vm_counts[recv]) recv = v;
    }
    if (static_cast<double>(vm_counts[donor]) <= (1.0 + tolerance_) * mean) break;
    if (donor == recv) break;

    const double excess = static_cast<double>(vm_counts[donor]) - mean;
    const double half_gap =
        static_cast<double>(vm_counts[donor] - vm_counts[recv]) / 2.0;
    std::uint64_t want = static_cast<std::uint64_t>(std::min(excess, half_gap));
    want = std::min(want, budget);
    if (want == 0) break;

    // Donor partition: most NAMEABLE actives on the donor VM — a partition
    // that received moves earlier in this plan counts them in part_counts
    // (they are load), but only its original active list can be donated
    // from, so selection and batch sizing go by the untaken remainder.
    // Receiver partition: fewest actives on the receiver VM. Ties break to
    // the lowest partition id, keeping the plan deterministic.
    PartitionId dp = kInvalidVertex, rp = kInvalidVertex;
    std::uint64_t dp_avail = 0;
    for (std::size_t p = 0; p < s.active.size(); ++p) {
      const std::uint32_t vm = (*s.placement)[p];
      if (vm == donor) {
        const std::uint64_t a = s.active[p].size() - taken[p];
        if (dp == kInvalidVertex || a > dp_avail) {
          dp = static_cast<PartitionId>(p);
          dp_avail = a;
        }
      }
      if (vm == recv && (rp == kInvalidVertex || part_counts[p] < part_counts[rp]))
        rp = static_cast<PartitionId>(p);
    }
    if (dp == kInvalidVertex || rp == kInvalidVertex || dp_avail == 0) break;

    const std::uint64_t batch = std::min<std::uint64_t>(want, dp_avail);
    const auto& actives = s.active[dp];
    const std::size_t end = actives.size() - taken[dp];
    for (std::uint64_t i = 0; i < batch; ++i)
      out.moves.push_back({actives[end - 1 - i], dp, rp});
    taken[dp] += batch;
    part_counts[dp] -= batch;
    part_counts[rp] += batch;
    vm_counts[donor] -= batch;
    vm_counts[recv] += batch;
    budget -= batch;
  }
  return out;
}

MigrationPlan EdgeCutRefinePlanner::plan(const RebalanceSignals& s) {
  MigrationPlan out;
  if (s.workers < 2 || s.active.empty() || s.graph == nullptr) return out;

  const auto& part_of = *s.part_of;
  const PartitionId parts = static_cast<PartitionId>(s.active.size());
  auto vm_counts = vm_active_counts(s);
  std::uint64_t total = 0;
  for (const auto c : vm_counts) total += c;
  if (total == 0) return out;
  const double cap =
      (1.0 + balance_tolerance_) * static_cast<double>(total) /
      static_cast<double>(s.workers);

  // Tally cache: reusable while the location table is unchanged. The version
  // guard is the cheap fast path (any applied migration bumps it); the full
  // part_of comparison keeps the cache sound when distinct engines share one
  // planner instance and happen to land on equal version counters.
  const bool reusable = cache_valid_ && cached_graph_ == s.graph &&
                        cached_version_ == s.location_version &&
                        cached_part_of_ == part_of;
  if (!reusable) {
    tallies_.clear();
    cached_graph_ = s.graph;
    cached_version_ = s.location_version;
    cached_part_of_ = part_of;
    cache_valid_ = true;
  }

  std::vector<std::uint32_t> tally(parts, 0);
  for (PartitionId p = 0; p < parts && out.moves.size() < max_moves_; ++p) {
    for (const VertexId v : s.active[p]) {
      if (out.moves.size() >= max_moves_) break;
      auto it = tallies_.find(v);
      if (it == tallies_.end()) {
        std::vector<std::pair<PartitionId, std::uint32_t>> entry;
        const auto nbrs = s.graph->out_neighbors(v);
        for (const VertexId u : nbrs) tally[part_of[u]]++;
        for (PartitionId q = 0; q < parts; ++q)
          if (tally[q] > 0) entry.push_back({q, tally[q]});
        for (const VertexId u : nbrs) tally[part_of[u]] = 0;  // reset for next vertex
        it = tallies_.emplace(v, std::move(entry)).first;
      } else {
        ++cache_hits_;
      }
      const auto& counts = it->second;  // ascending partition id
      if (counts.empty()) continue;     // isolated vertex
      // Best foreign partition by neighbor count; ties to the lowest id
      // (entries are ascending and only a strictly greater count displaces
      // the running best, exactly matching the uncached scan).
      std::uint32_t home_n = 0;
      for (const auto& [q, n] : counts)
        if (q == p) home_n = n;
      PartitionId best = p;
      std::uint32_t best_n = home_n;
      for (const auto& [q, n] : counts) {
        if (q != p && n > best_n) {
          best = q;
          best_n = n;
        }
      }
      if (best == p || best_n <= home_n) continue;
      const std::uint32_t dst_vm = (*s.placement)[best];
      const std::uint32_t src_vm = (*s.placement)[p];
      if (dst_vm == src_vm) {
        // Same VM: pure cut refinement, no load shift — always admissible.
        out.moves.push_back({v, p, best});
        continue;
      }
      if (static_cast<double>(vm_counts[dst_vm]) + 1.0 > cap) continue;
      out.moves.push_back({v, p, best});
      vm_counts[dst_vm] += 1;
      vm_counts[src_vm] -= 1;
    }
  }
  return out;
}

}  // namespace pregel
