#include "partition/meta_graph.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pregel {

MetaGraph::MetaGraph(const Graph& graph, const std::vector<PartitionId>& part_of,
                     PartitionId num_parts, Bytes bytes_per_boundary_message) {
  nodes_.assign(num_parts, {});
  activity_.assign(num_parts, 0);
  // Dense cut tally: partition counts in this codebase are tens, not
  // thousands, so P^2 counters beat a hash map and keep the scan branch-free.
  std::vector<std::uint64_t> cut(static_cast<std::size_t>(num_parts) * num_parts, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const PartitionId p = part_of[v];
    PREGEL_DCHECK(p < num_parts);
    ++nodes_[p].vertices;
    for (const VertexId u : graph.out_neighbors(v)) {
      const PartitionId q = part_of[u];
      if (q == p)
        ++nodes_[p].internal_arcs;
      else
        ++cut[static_cast<std::size_t>(p) * num_parts + q];
    }
  }
  off_.assign(static_cast<std::size_t>(num_parts) + 1, 0);
  for (PartitionId p = 0; p < num_parts; ++p) {
    for (PartitionId q = 0; q < num_parts; ++q) {
      const std::uint64_t m = cut[static_cast<std::size_t>(p) * num_parts + q];
      if (m == 0) continue;
      edges_.push_back({p, q, m, m * bytes_per_boundary_message});
      total_cut_arcs_ += m;
      total_cut_bytes_ += m * bytes_per_boundary_message;
    }
    off_[p + 1] = static_cast<std::uint32_t>(edges_.size());
  }
}

void MetaGraph::record_activity(std::uint64_t superstep,
                                const std::vector<std::uint64_t>& active_per_partition) {
  PREGEL_DCHECK(active_per_partition.size() == nodes_.size());
  activity_ = active_per_partition;
  activity_superstep_ = superstep;
}

MigrationPlan MetaGraphPlanner::plan(const RebalanceSignals& s) {
  MigrationPlan out;
  if (s.workers < 2 || s.active.empty() || s.graph == nullptr) return out;
  const PartitionId parts = static_cast<PartitionId>(s.active.size());
  const auto& part_of = *s.part_of;
  const auto& placement = *s.placement;

  // The meta-graph is a pure function of (graph, location table); any
  // applied migration bumps location_version, so an unchanged version means
  // the cached structure is still exact.
  if (!cache_valid_ || cached_graph_ != s.graph || cached_version_ != s.location_version) {
    meta_ = MetaGraph(*s.graph, part_of, parts, bytes_per_message_);
    cached_graph_ = s.graph;
    cached_version_ = s.location_version;
    cache_valid_ = true;
    ++rebuilds_;
  }

  std::vector<std::uint64_t> act(parts, 0);
  for (PartitionId p = 0; p < parts; ++p) act[p] = s.active[p].size();
  meta_.record_activity(s.superstep, act);

  // Forecast next-superstep influx from frontier motion across the cut.
  std::vector<double> pred(parts, 0.0);
  for (PartitionId p = 0; p < parts; ++p) {
    if (act[p] == 0) continue;
    const double per_vertex = static_cast<double>(act[p]) /
                              static_cast<double>(std::max<std::uint64_t>(
                                  meta_.nodes()[p].vertices, 1));
    for (const MetaEdge& e : meta_.out_edges(p))
      pred[e.dst] += per_vertex * static_cast<double>(e.multiplicity);
  }

  // Predicted per-VM load one barrier out: what is still running plus what
  // the wave is about to deliver.
  std::vector<double> vm_load(s.workers, 0.0);
  double total = 0.0;
  for (PartitionId p = 0; p < parts; ++p) {
    const double load = static_cast<double>(act[p]) + pred[p];
    PREGEL_DCHECK(placement[p] < s.workers);
    vm_load[placement[p]] += load;
    total += load;
  }
  if (total <= 0.0) return out;
  const double mean = total / static_cast<double>(s.workers);
  std::uint32_t hot = 0, cool = 0;
  for (std::uint32_t v = 1; v < s.workers; ++v) {
    if (vm_load[v] > vm_load[hot]) hot = v;
    if (vm_load[v] < vm_load[cool]) cool = v;
  }
  if (hot == cool || vm_load[hot] <= (1.0 + tolerance_) * mean) return out;

  // Receiver: the cool VM's least predicted-loaded partition (ties to the
  // lowest id — deterministic).
  PartitionId rp = kInvalidVertex;
  double rp_load = 0.0;
  for (PartitionId p = 0; p < parts; ++p) {
    if (placement[p] != cool) continue;
    const double load = static_cast<double>(act[p]) + pred[p];
    if (rp == kInvalidVertex || load < rp_load) {
      rp = p;
      rp_load = load;
    }
  }
  if (rp == kInvalidVertex) return out;

  // Move predicted next-wave vertices ahead of the frontier: targets of cut
  // arcs out of currently-active vertices that land on the hot VM. Scan
  // order (partitions ascending, active ids ascending, adjacency order) and
  // first-hit dedup keep the plan deterministic.
  const double want = vm_load[hot] - mean;  // predicted-active units to shift
  std::vector<std::uint8_t> seen(s.graph->num_vertices(), 0);
  double moved = 0.0;
  for (PartitionId p = 0; p < parts && moved < want; ++p) {
    if (act[p] == 0) continue;
    for (const VertexId v : s.active[p]) {
      if (moved >= want || out.moves.size() >= max_moves_) break;
      for (const VertexId u : s.graph->out_neighbors(v)) {
        if (out.moves.size() >= max_moves_) break;
        const PartitionId q = part_of[u];
        if (placement[q] != hot || seen[u]) continue;
        seen[u] = 1;
        out.moves.push_back({u, q, rp});
        moved += 1.0;
        if (moved >= want) break;
      }
    }
  }
  return out;
}

}  // namespace pregel
