// The meta-graph: partitions as vertices, cut arcs as weighted edges — the
// coarse graph the subgraph-centric model (docs/SUBGRAPH.md) actually
// traverses. Each meta-edge carries the cut-arc multiplicity and its byte
// weight (multiplicity x modeled boundary-message payload); per-superstep
// activity annotations record how the frontier moved through the partitions.
//
// Built by a deterministic id-order scan, the meta-graph is a pure function
// of (graph, part_of, num_parts, bytes-per-message): identical across
// parallelism levels and after migration re-bases that land on the same
// location table. The MetaGraphPlanner keys its cache on
// RebalanceSignals::location_version for exactly that reason.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"

namespace pregel {

/// Per-partition node of the meta-graph.
struct MetaVertex {
  std::uint64_t vertices = 0;       ///< vertices homed in the partition
  std::uint64_t internal_arcs = 0;  ///< arcs with both endpoints inside
  friend bool operator==(const MetaVertex&, const MetaVertex&) = default;
};

/// One directed cut edge src -> dst aggregated over all crossing arcs.
struct MetaEdge {
  PartitionId src = 0;
  PartitionId dst = 0;
  std::uint64_t multiplicity = 0;  ///< crossing arcs
  Bytes weight_bytes = 0;          ///< multiplicity x bytes per boundary message
  friend bool operator==(const MetaEdge&, const MetaEdge&) = default;
};

class MetaGraph {
 public:
  MetaGraph() = default;

  /// Deterministic construction: scan vertices in ascending id, arcs in
  /// adjacency order; edges come out sorted by (src, dst).
  MetaGraph(const Graph& graph, const std::vector<PartitionId>& part_of,
            PartitionId num_parts, Bytes bytes_per_boundary_message);

  std::uint32_t num_partitions() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  const std::vector<MetaVertex>& nodes() const noexcept { return nodes_; }
  const std::vector<MetaEdge>& edges() const noexcept { return edges_; }
  /// Out-edges of partition p — a contiguous slice of edges().
  std::span<const MetaEdge> out_edges(PartitionId p) const {
    return std::span<const MetaEdge>(edges_).subspan(off_[p], off_[p + 1] - off_[p]);
  }
  std::uint64_t total_cut_arcs() const noexcept { return total_cut_arcs_; }
  Bytes total_cut_bytes() const noexcept { return total_cut_bytes_; }

  /// Record one superstep's per-partition activity (modeled active-vertex
  /// counts). The latest annotation drives the planner's forecast.
  void record_activity(std::uint64_t superstep,
                       const std::vector<std::uint64_t>& active_per_partition);
  std::uint64_t last_activity_superstep() const noexcept { return activity_superstep_; }
  const std::vector<std::uint64_t>& activity() const noexcept { return activity_; }

  /// Structural equality (annotations excluded) — what the determinism
  /// tests compare across parallelism levels and migration re-bases.
  friend bool operator==(const MetaGraph& a, const MetaGraph& b) {
    return a.nodes_ == b.nodes_ && a.edges_ == b.edges_;
  }

 private:
  std::vector<MetaVertex> nodes_;
  std::vector<MetaEdge> edges_;       ///< sorted by (src, dst)
  std::vector<std::uint32_t> off_;    ///< CSR offsets into edges_, size P+1
  std::uint64_t total_cut_arcs_ = 0;
  Bytes total_cut_bytes_ = 0;
  std::vector<std::uint64_t> activity_;  ///< latest per-partition annotation
  std::uint64_t activity_superstep_ = 0;
};

/// Predictive migration planning over the meta-graph: forecast the next
/// superstep's boundary traffic from this superstep's frontier and the cut
/// multiplicities, and move the predicted next-wave vertices *ahead* of the
/// frontier — from the VM the wave is about to pile onto, to the coolest VM
/// — through the ordinary MigrationExecutor. Where ActivityGreedy reacts to
/// the imbalance it can already see, this planner spends its moves on the
/// imbalance one barrier out.
///
/// Forecast rule (docs/SUBGRAPH.md): predicted influx into partition q is
///   pred(q) = sum over p != q of  act(p) * mult(p->q) / max(1, |V(p)|),
/// i.e. each active vertex of p is assumed to push its share of p's cut
/// toward q. Predicted partition load is act(q) + pred(q); VM loads sum
/// their partitions. The meta-graph itself is cached on (graph,
/// location_version) — rebuilding it costs a full arc scan, so it is reused
/// across consecutive barriers exactly like the cut-refine tally cache.
class MetaGraphPlanner final : public MigrationPlanner {
 public:
  explicit MetaGraphPlanner(double tolerance = 0.2, std::uint64_t max_moves = 2048,
                            Bytes bytes_per_boundary_message = 8)
      : tolerance_(tolerance), max_moves_(max_moves),
        bytes_per_message_(bytes_per_boundary_message) {}

  MigrationPlan plan(const RebalanceSignals& s) override;
  std::string name() const override { return "meta-graph"; }

  /// The cached meta-graph (for observability; rebuilt lazily by plan()).
  const MetaGraph& meta_graph() const noexcept { return meta_; }
  std::uint64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  double tolerance_;
  std::uint64_t max_moves_;
  Bytes bytes_per_message_;

  MetaGraph meta_;
  const Graph* cached_graph_ = nullptr;
  std::uint64_t cached_version_ = 0;
  bool cache_valid_ = false;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace pregel
