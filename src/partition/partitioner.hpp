// Partitioner interface and the trivial (hash / range) strategies.
//
// Section VII of the paper compares three assignment strategies for mapping
// graph vertices onto BSP workers: simple hashing of the vertex id (the
// Pregel default), best-in-class in-place METIS partitioning, and the
// streaming one-pass partitioners of Stanton & Kliot (MSR-TR-2011-121).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pregel {

using PartitionId = std::uint32_t;

/// A complete assignment of every vertex to one of `num_parts` partitions.
class Partitioning {
 public:
  Partitioning() = default;
  Partitioning(std::vector<PartitionId> assignment, PartitionId num_parts);

  PartitionId num_parts() const noexcept { return num_parts_; }
  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(assignment_.size());
  }
  PartitionId part_of(VertexId v) const { return assignment_.at(v); }
  const std::vector<PartitionId>& assignment() const noexcept { return assignment_; }

  /// Number of vertices in each partition.
  std::vector<VertexId> part_sizes() const;

  /// Vertices belonging to partition p, ascending.
  std::vector<VertexId> members(PartitionId p) const;

 private:
  std::vector<PartitionId> assignment_;
  PartitionId num_parts_ = 0;
};

/// Strategy interface. Implementations must be deterministic given their
/// construction parameters (seeds are constructor arguments, never global).
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual Partitioning partition(const Graph& g, PartitionId num_parts) const = 0;
  /// Short label for reports: "hash", "metis-like", "ldg", ...
  virtual std::string name() const = 0;
};

/// Pregel's default: partition = mix64(vertex id) mod parts. Spreads load
/// uniformly but ignores structure entirely (87% remote edges on WG).
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(std::uint64_t seed = 0) : seed_(seed) {}
  Partitioning partition(const Graph& g, PartitionId num_parts) const override;
  std::string name() const override { return "hash"; }

 private:
  std::uint64_t seed_;
};

/// Contiguous id ranges — cheap, locality only if ids are already clustered.
class RangePartitioner final : public Partitioner {
 public:
  Partitioning partition(const Graph& g, PartitionId num_parts) const override;
  std::string name() const override { return "range"; }
};

}  // namespace pregel
