// Partition quality metrics: the quantities Section VII of the paper reports
// (remote-edge percentage, edge-cut, balance) plus per-partition detail used
// by the load-imbalance analysis.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "partition/partitioner.hpp"

namespace pregel {

struct PartitionQuality {
  /// Arcs whose endpoints live in different partitions.
  EdgeIndex cut_arcs = 0;
  /// cut_arcs / total arcs — the paper's "percentage of remote edges"
  /// (87% hash / 18% METIS / 35% streaming on WG at 8 parts).
  double remote_edge_fraction = 0.0;
  /// max partition size / average partition size (1.0 = perfect).
  double vertex_balance = 1.0;
  /// max partition arc count / average partition arc count.
  double edge_balance = 1.0;
  std::vector<VertexId> part_vertices;  ///< per partition
  std::vector<EdgeIndex> part_arcs;     ///< per partition (arcs originating there)
  std::vector<EdgeIndex> part_cut_arcs; ///< per partition remote arcs
};

PartitionQuality evaluate_partition(const Graph& g, const Partitioning& p);

}  // namespace pregel
