// Multilevel k-way graph partitioner in the style of METIS
// (Karypis & Kumar 1995 — reference [27] of the paper).
//
// Three phases:
//   1. Coarsening: repeated heavy-edge matching collapses the graph until it
//      is small (vertex and edge weights accumulate).
//   2. Initial partitioning: greedy balanced region growing on the coarsest
//      graph.
//   3. Uncoarsening: project the assignment back level by level, running a
//      boundary Kernighan–Lin / Fiduccia–Mattheyses refinement pass at each
//      level under a balance constraint.
//
// The goal is not to beat METIS but to land in the same edge-cut regime the
// paper reports (remote-edge fraction ~17-18% at 8 parts on WG/CP vs ~87%
// for hash), so the partitioning analysis of Section VII reproduces.
#pragma once

#include <cstdint>

#include "partition/partitioner.hpp"

namespace pregel {

class MultilevelPartitioner final : public Partitioner {
 public:
  struct Options {
    /// Coarsening stops when the graph has at most
    /// max(coarsen_target_per_part * parts, 64) vertices.
    VertexId coarsen_target_per_part = 32;
    /// Refinement passes per level (each pass scans all boundary vertices).
    int refine_passes = 6;
    /// Allowed max-partition weight as a multiple of perfect balance.
    double imbalance_tolerance = 1.05;
    std::uint64_t seed = 1;
  };

  MultilevelPartitioner() = default;
  explicit MultilevelPartitioner(Options options);

  Partitioning partition(const Graph& g, PartitionId num_parts) const override;
  std::string name() const override { return "metis-like"; }

 private:
  Options opt_;
};

}  // namespace pregel
