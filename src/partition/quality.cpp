#include "partition/quality.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pregel {

PartitionQuality evaluate_partition(const Graph& g, const Partitioning& p) {
  PREGEL_CHECK_MSG(p.num_vertices() == g.num_vertices(),
                   "evaluate_partition: partitioning size mismatch");
  PartitionQuality q;
  const PartitionId parts = p.num_parts();
  q.part_vertices.assign(parts, 0);
  q.part_arcs.assign(parts, 0);
  q.part_cut_arcs.assign(parts, 0);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartitionId pv = p.part_of(v);
    ++q.part_vertices[pv];
    for (VertexId u : g.out_neighbors(v)) {
      ++q.part_arcs[pv];
      if (p.part_of(u) != pv) {
        ++q.part_cut_arcs[pv];
        ++q.cut_arcs;
      }
    }
  }

  const EdgeIndex arcs = g.num_arcs();
  q.remote_edge_fraction =
      arcs ? static_cast<double>(q.cut_arcs) / static_cast<double>(arcs) : 0.0;

  auto balance = [parts](const auto& sizes) {
    double total = 0.0, mx = 0.0;
    for (auto s : sizes) {
      total += static_cast<double>(s);
      mx = std::max(mx, static_cast<double>(s));
    }
    const double avg = total / static_cast<double>(parts);
    return avg > 0.0 ? mx / avg : 1.0;
  };
  q.vertex_balance = balance(q.part_vertices);
  q.edge_balance = balance(q.part_arcs);
  return q;
}

}  // namespace pregel
