#include "partition/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pregel {

namespace {

/// Weighted graph used internally across coarsening levels.
struct WGraph {
  std::vector<std::uint64_t> vweight;                      // per vertex
  std::vector<std::vector<std::pair<VertexId, std::uint64_t>>> adj;  // (nbr, edge weight)

  VertexId n() const { return static_cast<VertexId>(vweight.size()); }
  std::uint64_t total_weight() const {
    return std::accumulate(vweight.begin(), vweight.end(), std::uint64_t{0});
  }
};

WGraph from_graph(const Graph& g) {
  WGraph w;
  const VertexId n = g.num_vertices();
  w.vweight.assign(n, 1);
  w.adj.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    w.adj[v].reserve(g.out_degree(v));
    for (VertexId u : g.out_neighbors(v)) w.adj[v].push_back({u, 1});
  }
  return w;
}

/// One level of heavy-edge matching; returns the coarse graph and the
/// fine->coarse vertex map.
struct CoarseLevel {
  WGraph graph;
  std::vector<VertexId> fine_to_coarse;
};

CoarseLevel coarsen_once(const WGraph& g, Xoshiro256& rng) {
  const VertexId n = g.n();
  std::vector<VertexId> match(n, kInvalidVertex);
  std::vector<VertexId> visit(n);
  std::iota(visit.begin(), visit.end(), VertexId{0});
  for (VertexId i = n; i > 1; --i) std::swap(visit[i - 1], visit[rng.next_below(i)]);

  for (VertexId v : visit) {
    if (match[v] != kInvalidVertex) continue;
    VertexId best = kInvalidVertex;
    std::uint64_t best_w = 0;
    for (const auto& [u, w] : g.adj[v]) {
      if (u != v && match[u] == kInvalidVertex && w >= best_w) {
        best = u;
        best_w = w;
      }
    }
    if (best == kInvalidVertex) {
      match[v] = v;  // stays single
    } else {
      match[v] = best;
      match[best] = v;
    }
  }

  CoarseLevel lvl;
  lvl.fine_to_coarse.assign(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (lvl.fine_to_coarse[v] != kInvalidVertex) continue;
    lvl.fine_to_coarse[v] = next;
    const VertexId m = match[v];
    if (m != v && m != kInvalidVertex) lvl.fine_to_coarse[m] = next;
    ++next;
  }

  lvl.graph.vweight.assign(next, 0);
  lvl.graph.adj.resize(next);
  // Accumulate vertex weights.
  for (VertexId v = 0; v < n; ++v) lvl.graph.vweight[lvl.fine_to_coarse[v]] += g.vweight[v];
  // Accumulate edge weights between coarse vertices.
  std::unordered_map<VertexId, std::uint64_t> acc;
  for (VertexId cv = 0; cv < next; ++cv) lvl.graph.adj[cv].reserve(4);
  std::vector<std::vector<VertexId>> coarse_members(next);
  for (VertexId v = 0; v < n; ++v) coarse_members[lvl.fine_to_coarse[v]].push_back(v);
  for (VertexId cv = 0; cv < next; ++cv) {
    acc.clear();
    for (VertexId v : coarse_members[cv]) {
      for (const auto& [u, w] : g.adj[v]) {
        const VertexId cu = lvl.fine_to_coarse[u];
        if (cu != cv) acc[cu] += w;
      }
    }
    for (const auto& [cu, w] : acc) lvl.graph.adj[cv].push_back({cu, w});
  }
  return lvl;
}

/// Greedy balanced region growing on the coarsest graph: grow partitions
/// 0..k-2 one at a time via weight-bounded BFS from an unassigned seed;
/// leftover vertices go to the last partition.
std::vector<PartitionId> initial_partition(const WGraph& g, PartitionId parts,
                                           Xoshiro256& rng) {
  const VertexId n = g.n();
  std::vector<PartitionId> assign(n, parts);
  const double target =
      static_cast<double>(g.total_weight()) / static_cast<double>(parts);

  std::vector<VertexId> queue;
  for (PartitionId p = 0; p + 1 < parts; ++p) {
    double weight = 0.0;
    // Seed: random unassigned vertex.
    VertexId seed = kInvalidVertex;
    for (int tries = 0; tries < 64 && seed == kInvalidVertex; ++tries) {
      const auto c = static_cast<VertexId>(rng.next_below(n));
      if (assign[c] == parts) seed = c;
    }
    if (seed == kInvalidVertex) {
      for (VertexId v = 0; v < n && seed == kInvalidVertex; ++v)
        if (assign[v] == parts) seed = v;
    }
    if (seed == kInvalidVertex) break;  // everything assigned

    queue.clear();
    queue.push_back(seed);
    assign[seed] = p;
    weight += static_cast<double>(g.vweight[seed]);
    std::size_t head = 0;
    while (weight < target && head < queue.size()) {
      const VertexId v = queue[head++];
      for (const auto& [u, w] : g.adj[v]) {
        (void)w;
        if (assign[u] == parts && weight < target) {
          assign[u] = p;
          weight += static_cast<double>(g.vweight[u]);
          queue.push_back(u);
        }
      }
    }
    // If BFS exhausted the component before reaching target weight, jump to
    // another unassigned seed and continue growing this same partition.
    while (weight < target) {
      VertexId extra = kInvalidVertex;
      for (VertexId v = 0; v < n && extra == kInvalidVertex; ++v)
        if (assign[v] == parts) extra = v;
      if (extra == kInvalidVertex) break;
      assign[extra] = p;
      weight += static_cast<double>(g.vweight[extra]);
      queue.push_back(extra);
      std::size_t h2 = queue.size() - 1;
      while (weight < target && h2 < queue.size()) {
        const VertexId v = queue[h2++];
        for (const auto& [u, w] : g.adj[v]) {
          (void)w;
          if (assign[u] == parts && weight < target) {
            assign[u] = p;
            weight += static_cast<double>(g.vweight[u]);
            queue.push_back(u);
          }
        }
      }
    }
  }
  for (VertexId v = 0; v < n; ++v)
    if (assign[v] == parts) assign[v] = parts - 1;
  return assign;
}

/// Boundary FM-style refinement: repeatedly move boundary vertices to the
/// neighboring partition with the largest positive edge-weight gain, subject
/// to the balance constraint. Greedy (no hill-climbing) but applied at every
/// level of the hierarchy, which is where multilevel schemes get their power.
void refine(const WGraph& g, std::vector<PartitionId>& assign, PartitionId parts,
            int passes, double tolerance, Xoshiro256& rng) {
  const VertexId n = g.n();
  std::vector<double> part_weight(parts, 0.0);
  for (VertexId v = 0; v < n; ++v)
    part_weight[assign[v]] += static_cast<double>(g.vweight[v]);
  const double max_weight = static_cast<double>(g.total_weight()) /
                            static_cast<double>(parts) * tolerance;

  std::vector<std::uint64_t> conn(parts, 0);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});

  for (int pass = 0; pass < passes; ++pass) {
    for (VertexId i = n; i > 1; --i) std::swap(order[i - 1], order[rng.next_below(i)]);
    std::uint64_t moves = 0;
    for (VertexId v : order) {
      const PartitionId from = assign[v];
      std::fill(conn.begin(), conn.end(), 0);
      bool boundary = false;
      for (const auto& [u, w] : g.adj[v]) {
        conn[assign[u]] += w;
        if (assign[u] != from) boundary = true;
      }
      if (!boundary) continue;
      PartitionId best = from;
      std::uint64_t best_conn = conn[from];
      for (PartitionId p = 0; p < parts; ++p) {
        if (p == from) continue;
        if (part_weight[p] + static_cast<double>(g.vweight[v]) > max_weight) continue;
        if (conn[p] > best_conn) {
          best_conn = conn[p];
          best = p;
        }
      }
      if (best != from) {
        assign[v] = best;
        part_weight[from] -= static_cast<double>(g.vweight[v]);
        part_weight[best] += static_cast<double>(g.vweight[v]);
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

}  // namespace

MultilevelPartitioner::MultilevelPartitioner(Options options) : opt_(options) {
  PREGEL_CHECK_MSG(opt_.imbalance_tolerance >= 1.0,
                   "MultilevelPartitioner: tolerance must be >= 1");
  PREGEL_CHECK_MSG(opt_.refine_passes >= 0, "MultilevelPartitioner: passes must be >= 0");
}

Partitioning MultilevelPartitioner::partition(const Graph& g, PartitionId num_parts) const {
  PREGEL_CHECK(num_parts > 0);
  const VertexId n = g.num_vertices();
  if (num_parts == 1 || n == 0)
    return {std::vector<PartitionId>(n, 0), std::max<PartitionId>(num_parts, 1)};

  Xoshiro256 rng(opt_.seed);
  const VertexId stop_at =
      std::max<VertexId>(opt_.coarsen_target_per_part * num_parts, 64);

  // Phase 1: coarsen. graphs[0] is the input; maps[i] sends graphs[i]'s
  // vertices to graphs[i+1]'s. Each level roughly halves, so keeping the
  // whole hierarchy costs ~2x the input graph.
  std::vector<WGraph> graphs;
  std::vector<std::vector<VertexId>> maps;
  graphs.push_back(from_graph(g));
  while (graphs.back().n() > stop_at) {
    CoarseLevel lvl = coarsen_once(graphs.back(), rng);
    // Matching stalls (e.g. a star) once coarse size stops shrinking.
    if (lvl.graph.n() >= graphs.back().n()) break;
    maps.push_back(std::move(lvl.fine_to_coarse));
    graphs.push_back(std::move(lvl.graph));
  }

  // Phase 2: initial partition on the coarsest graph.
  std::vector<PartitionId> assign = initial_partition(graphs.back(), num_parts, rng);
  refine(graphs.back(), assign, num_parts, opt_.refine_passes, opt_.imbalance_tolerance,
         rng);

  // Phase 3: uncoarsen, refining at every level.
  for (std::size_t lvl = maps.size(); lvl-- > 0;) {
    std::vector<PartitionId> fine_assign(maps[lvl].size());
    for (VertexId v = 0; v < fine_assign.size(); ++v) fine_assign[v] = assign[maps[lvl][v]];
    assign = std::move(fine_assign);
    refine(graphs[lvl], assign, num_parts, opt_.refine_passes, opt_.imbalance_tolerance,
           rng);
  }

  return {std::move(assign), num_parts};
}

}  // namespace pregel
