#include "partition/partitioner.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pregel {

Partitioning::Partitioning(std::vector<PartitionId> assignment, PartitionId num_parts)
    : assignment_(std::move(assignment)), num_parts_(num_parts) {
  PREGEL_CHECK_MSG(num_parts_ > 0, "Partitioning: need at least one partition");
  for (PartitionId p : assignment_)
    PREGEL_CHECK_MSG(p < num_parts_, "Partitioning: assignment out of range");
}

std::vector<VertexId> Partitioning::part_sizes() const {
  std::vector<VertexId> sizes(num_parts_, 0);
  for (PartitionId p : assignment_) ++sizes[p];
  return sizes;
}

std::vector<VertexId> Partitioning::members(PartitionId p) const {
  PREGEL_CHECK(p < num_parts_);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < assignment_.size(); ++v)
    if (assignment_[v] == p) out.push_back(v);
  return out;
}

Partitioning HashPartitioner::partition(const Graph& g, PartitionId num_parts) const {
  PREGEL_CHECK(num_parts > 0);
  std::vector<PartitionId> a(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    a[v] = static_cast<PartitionId>(mix64(v ^ seed_) % num_parts);
  return {std::move(a), num_parts};
}

Partitioning RangePartitioner::partition(const Graph& g, PartitionId num_parts) const {
  PREGEL_CHECK(num_parts > 0);
  const VertexId n = g.num_vertices();
  std::vector<PartitionId> a(n);
  for (VertexId v = 0; v < n; ++v) {
    // Balanced ranges even when n % parts != 0.
    a[v] = static_cast<PartitionId>((static_cast<std::uint64_t>(v) * num_parts) / std::max<VertexId>(n, 1));
  }
  return {std::move(a), num_parts};
}

}  // namespace pregel
