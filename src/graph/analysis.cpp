#include "graph/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pregel {

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  PREGEL_CHECK(source < g.num_vertices());
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : g.out_neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

ComponentResult connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  // Union-find with path halving + union by size.
  std::vector<VertexId> parent(n);
  std::vector<VertexId> size(n, 1);
  std::iota(parent.begin(), parent.end(), VertexId{0});
  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      VertexId ru = find(u), rv = find(v);
      if (ru == rv) continue;
      if (size[ru] < size[rv]) std::swap(ru, rv);
      parent[rv] = ru;
      size[ru] += size[rv];
    }
  }
  ComponentResult r;
  r.component.resize(n);
  // Canonicalize: label = smallest vertex in component.
  std::vector<VertexId> label(n, kInvalidVertex);
  for (VertexId u = 0; u < n; ++u) {
    const VertexId root = find(u);
    if (label[root] == kInvalidVertex) {
      label[root] = u;  // u is the smallest id reaching this root (ascending scan)
      ++r.count;
    }
    r.component[u] = label[root];
  }
  for (VertexId u = 0; u < n; ++u)
    if (find(u) == u) r.giant_size = std::max(r.giant_size, size[u]);
  return r;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats d;
  std::uint32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t deg = g.out_degree(v);
    d.stats.add(deg);
    d.histogram.add(deg);
    if (deg >= best) {
      best = deg;
      d.max_degree_vertex = v;
    }
  }
  return d;
}

DiameterResult effective_diameter(const Graph& g, std::size_t samples, std::uint64_t seed) {
  PREGEL_CHECK(g.num_vertices() > 0);
  Xoshiro256 rng(seed);
  samples = std::min<std::size_t>(samples, g.num_vertices());

  // Cumulative count of reachable pairs by hop distance.
  std::vector<std::uint64_t> by_hop;
  std::uint64_t reachable_pairs = 0;
  double dist_sum = 0.0;
  std::uint32_t max_seen = 0;

  std::unordered_set<VertexId> chosen;
  while (chosen.size() < samples)
    chosen.insert(static_cast<VertexId>(rng.next_below(g.num_vertices())));

  for (VertexId src : chosen) {
    const auto dist = bfs_distances(g, src);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const std::uint32_t d = dist[v];
      if (d == kUnreachable || v == src) continue;
      if (d >= by_hop.size()) by_hop.resize(d + 1, 0);
      ++by_hop[d];
      ++reachable_pairs;
      dist_sum += d;
      max_seen = std::max(max_seen, d);
    }
  }

  DiameterResult r;
  r.max_seen = max_seen;
  if (reachable_pairs == 0) return r;
  r.mean_distance = dist_sum / static_cast<double>(reachable_pairs);

  // SNAP-style interpolated 90% effective diameter: find hop h where the
  // cumulative fraction crosses 0.9 and interpolate within that hop.
  const double target = 0.9 * static_cast<double>(reachable_pairs);
  std::uint64_t cum = 0;
  for (std::size_t h = 0; h < by_hop.size(); ++h) {
    const std::uint64_t prev = cum;
    cum += by_hop[h];
    if (static_cast<double>(cum) >= target) {
      const double need = target - static_cast<double>(prev);
      const double frac = by_hop[h] ? need / static_cast<double>(by_hop[h]) : 0.0;
      r.effective_90 = (static_cast<double>(h) - 1.0) + frac;
      return r;
    }
  }
  r.effective_90 = max_seen;
  return r;
}

double clustering_coefficient(const Graph& g, std::size_t samples, std::uint64_t seed) {
  PREGEL_CHECK(g.num_vertices() > 0);
  Xoshiro256 rng(seed);
  samples = std::min<std::size_t>(samples, g.num_vertices());
  double sum = 0.0;
  std::size_t counted = 0;
  std::unordered_set<VertexId> nbr;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto neigh = g.out_neighbors(v);
    const std::size_t k = neigh.size();
    if (k < 2) continue;
    nbr.clear();
    nbr.insert(neigh.begin(), neigh.end());
    std::uint64_t links = 0;
    for (VertexId u : neigh)
      for (VertexId w : g.out_neighbors(u))
        if (w != v && nbr.contains(w)) ++links;
    // Each triangle edge counted twice (u->w and w->u in symmetric storage).
    sum += static_cast<double>(links) / (static_cast<double>(k) * static_cast<double>(k - 1));
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

std::vector<double> reference_pagerank(const Graph& g, int iterations, double damping) {
  const VertexId n = g.num_vertices();
  PREGEL_CHECK(n > 0);
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const auto deg = g.out_degree(v);
      if (deg == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = damping * rank[v] / deg;
      for (VertexId u : g.out_neighbors(v)) next[u] += share;
    }
    const double spread = damping * dangling / n;
    for (VertexId v = 0; v < n; ++v) next[v] += spread;
    rank.swap(next);
  }
  return rank;
}

std::vector<double> reference_betweenness(const Graph& g, const std::vector<VertexId>& roots) {
  const VertexId n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  std::vector<VertexId> all;
  const std::vector<VertexId>* sources = &roots;
  if (roots.empty()) {
    all.resize(n);
    std::iota(all.begin(), all.end(), VertexId{0});
    sources = &all;
  }

  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<VertexId> order;  // vertices in non-decreasing distance
  order.reserve(n);

  for (VertexId s : *sources) {
    PREGEL_CHECK(s < n);
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();

    dist[s] = 0;
    sigma[s] = 1.0;
    std::size_t head = 0;
    order.push_back(s);
    while (head < order.size()) {
      const VertexId u = order[head++];
      for (VertexId v : g.out_neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = dist[u] + 1;
          order.push_back(v);
        }
        if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
      }
    }
    // Accumulate in reverse BFS order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const VertexId w = *it;
      for (VertexId v : g.out_neighbors(w)) {
        if (dist[v] + 1 == dist[w]) {
          // v is a predecessor of w
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  return bc;
}

std::vector<std::vector<std::uint32_t>> reference_apsp(const Graph& g,
                                                       const std::vector<VertexId>& roots) {
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(roots.size());
  for (VertexId r : roots) out.push_back(bfs_distances(g, r));
  return out;
}

Graph induced_subgraph(const Graph& g, const std::vector<VertexId>& vertices) {
  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(vertices.size());
  for (VertexId v : vertices) {
    PREGEL_CHECK_MSG(v < g.num_vertices(), "induced_subgraph: vertex out of range");
    const bool inserted =
        remap.try_emplace(v, static_cast<VertexId>(remap.size())).second;
    PREGEL_CHECK_MSG(inserted, "induced_subgraph: duplicate vertex id");
  }
  GraphBuilder b(static_cast<VertexId>(vertices.size()), g.undirected());
  for (VertexId v : vertices) {
    for (VertexId u : g.out_neighbors(v)) {
      auto it = remap.find(u);
      if (it == remap.end()) continue;
      if (g.undirected() && u < v) continue;  // add each undirected edge once
      b.add_edge(remap[v], it->second);
    }
  }
  Graph out = b.build();
  out.set_name(g.name().empty() ? "subgraph" : g.name() + "-sub");
  return out;
}

Graph largest_component_subgraph(const Graph& g) {
  const auto cc = connected_components(g);
  // Find the label of the largest component.
  std::unordered_map<VertexId, VertexId> sizes;
  for (VertexId v = 0; v < g.num_vertices(); ++v) ++sizes[cc.component[v]];
  VertexId best_label = 0, best_size = 0;
  for (const auto& [label, size] : sizes) {
    if (size > best_size || (size == best_size && label < best_label)) {
      best_label = label;
      best_size = size;
    }
  }
  std::vector<VertexId> members;
  members.reserve(best_size);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (cc.component[v] == best_label) members.push_back(v);
  Graph out = induced_subgraph(g, members);
  out.set_name(g.name().empty() ? "giant" : g.name() + "-giant");
  return out;
}

std::uint64_t reference_triangles(const Graph& g) {
  // For each oriented edge u < v, count common neighbors w > v; each
  // triangle {u < v < w} is found exactly once. Adjacency lists are sorted.
  std::uint64_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.out_neighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      const auto nv = g.out_neighbors(v);
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] <= v) {
          ++i;
        } else if (nv[j] <= v) {
          ++j;
        } else if (nu[i] < nv[j]) {
          ++i;
        } else if (nv[j] < nu[i]) {
          ++j;
        } else {
          ++total;
          ++i;
          ++j;
        }
      }
    }
  }
  return total;
}

}  // namespace pregel
