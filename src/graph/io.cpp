#include "graph/io.hpp"

#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "util/check.hpp"

namespace pregel {

namespace {

constexpr std::uint64_t kMagic = 0x50524750'47525048ULL;  // "PRGPGRPH"

struct BinHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t undirected;
  std::uint64_t num_vertices;
  std::uint64_t num_arcs;
};

template <typename T>
void append_raw(std::vector<std::byte>& out, const T* data, std::size_t count) {
  if (count == 0) return;  // empty vectors hand out null data()
  const auto* p = reinterpret_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + count * sizeof(T));
}

template <typename T>
void read_raw(const std::vector<std::byte>& in, std::size_t& pos, T* data, std::size_t count) {
  if (count == 0) return;  // empty vectors hand out null data()
  const std::size_t bytes = count * sizeof(T);
  if (pos + bytes > in.size())
    throw std::runtime_error("deserialize_graph: truncated input");
  std::memcpy(data, in.data() + pos, bytes);
  pos += bytes;
}

}  // namespace

Graph read_edge_list(std::istream& in, bool undirected) {
  std::vector<Edge> raw;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto dense = [&remap](std::uint64_t id) {
    auto [it, inserted] = remap.try_emplace(id, static_cast<VertexId>(remap.size()));
    return it->second;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') continue;

    std::uint64_t ids[2];
    for (int k = 0; k < 2; ++k) {
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      const char* begin = line.data() + i;
      const char* end = line.data() + line.size();
      auto [ptr, ec] = std::from_chars(begin, end, ids[k]);
      if (ec != std::errc{} || ptr == begin)
        throw std::runtime_error("read_edge_list: malformed line " + std::to_string(lineno) +
                                 ": '" + line + "'");
      i = static_cast<std::size_t>(ptr - line.data());
    }
    raw.push_back({dense(ids[0]), dense(ids[1])});
  }

  GraphBuilder b(static_cast<VertexId>(remap.size()), undirected);
  for (const Edge& e : raw) b.add_edge(e.src, e.dst);
  return b.build();
}

Graph read_edge_list_file(const std::string& path, bool undirected) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in, undirected);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# " << g.summary() << "\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      if (g.undirected() && v < u) continue;  // emit each undirected edge once
      out << u << '\t' << v << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(g, out);
}

Graph read_metis(std::istream& in) {
  std::string line;
  // Header: skip comment lines (starting with '%').
  std::uint64_t n = 0, m = 0;
  std::string fmt;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream header(line);
    if (!(header >> n >> m)) throw std::runtime_error("read_metis: bad header");
    header >> fmt;  // optional
    break;
  }
  if (!fmt.empty() && fmt != "0" && fmt != "00" && fmt != "000")
    throw std::runtime_error("read_metis: weighted format '" + fmt + "' not supported");

  GraphBuilder b(static_cast<VertexId>(n), /*undirected=*/true);
  VertexId v = 0;
  while (v < n && std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream row(line);
    std::uint64_t nbr;
    while (row >> nbr) {
      if (nbr < 1 || nbr > n)
        throw std::runtime_error("read_metis: neighbor id out of range at vertex " +
                                 std::to_string(v + 1));
      const auto u = static_cast<VertexId>(nbr - 1);  // 1-based on disk
      if (u > v) b.add_edge(v, u);  // each undirected edge appears twice; keep one
    }
    ++v;
  }
  if (v != n) throw std::runtime_error("read_metis: expected " + std::to_string(n) +
                                       " adjacency lines, got " + std::to_string(v));
  Graph g = b.build();
  if (g.num_edges() != m)
    throw std::runtime_error("read_metis: header claims " + std::to_string(m) +
                             " edges, file encodes " + std::to_string(g.num_edges()));
  return g;
}

Graph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_metis_file: cannot open " + path);
  return read_metis(in);
}

void write_metis(const Graph& g, std::ostream& out) {
  if (!g.undirected())
    throw std::invalid_argument("write_metis: format requires an undirected graph");
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (VertexId u : g.out_neighbors(v)) {
      if (!first) out << ' ';
      out << (u + 1);  // 1-based
      first = false;
    }
    out << '\n';
  }
}

void write_metis_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_metis_file: cannot open " + path);
  write_metis(g, out);
}

std::vector<std::byte> serialize_graph(const Graph& g) {
  std::vector<std::byte> out;
  const VertexId n = g.num_vertices();
  BinHeader h{kMagic, 1, g.undirected() ? 1u : 0u, n, g.num_arcs()};
  append_raw(out, &h, 1);
  // Re-derive CSR arrays through the public API so this stays independent of
  // Graph's internals.
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + g.out_degree(v);
  append_raw(out, offsets.data(), offsets.size());
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.out_neighbors(v);
    append_raw(out, nbrs.data(), nbrs.size());
  }
  return out;
}

Graph deserialize_graph(const std::vector<std::byte>& bytes) {
  std::size_t pos = 0;
  BinHeader h{};
  read_raw(bytes, pos, &h, 1);
  if (h.magic != kMagic) throw std::runtime_error("deserialize_graph: bad magic");
  if (h.version != 1) throw std::runtime_error("deserialize_graph: unsupported version");

  const auto n = static_cast<VertexId>(h.num_vertices);
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1);
  read_raw(bytes, pos, offsets.data(), offsets.size());
  std::vector<VertexId> adj(h.num_arcs);
  read_raw(bytes, pos, adj.data(), adj.size());

  // Rebuild via the builder to preserve Graph's invariants. Arcs are added
  // as directed regardless of the flag (they are already symmetrized when
  // undirected), then the flag is restored through a directed builder.
  GraphBuilder b(n, /*undirected=*/false);
  b.keep_duplicates().keep_self_loops();
  for (VertexId v = 0; v < n; ++v)
    for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) b.add_edge(v, adj[i]);
  Graph g = b.build();
  if (h.undirected != 0) {
    // Restore the undirected flag: rebuild through an undirected builder
    // using only the canonical arc direction.
    GraphBuilder ub(n, /*undirected=*/true);
    for (VertexId v = 0; v < n; ++v)
      for (VertexId u : g.out_neighbors(v))
        if (v <= u) ub.add_edge(v, u);
    return ub.build();
  }
  return g;
}

}  // namespace pregel
