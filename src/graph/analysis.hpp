// Sequential graph analysis used for (a) regenerating Table 1's dataset
// statistics for the analogs and (b) providing trusted reference results the
// BSP algorithm tests validate against.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace pregel {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// BFS hop distances from `source` (kUnreachable where not reachable).
std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source);

/// Connected components over the undirected view; returns component id per
/// vertex (ids are the smallest vertex id in the component) and the count.
struct ComponentResult {
  std::vector<VertexId> component;
  std::size_t count = 0;
  /// Size of the largest component.
  VertexId giant_size = 0;
};
ComponentResult connected_components(const Graph& g);

/// Degree distribution summary.
struct DegreeStats {
  RunningStats stats;       ///< over out-degrees
  Log2Histogram histogram;  ///< log-binned degree histogram
  VertexId max_degree_vertex = kInvalidVertex;
};
DegreeStats degree_stats(const Graph& g);

/// 90% effective diameter: the distance within which 90% of reachable
/// ordered vertex pairs lie, estimated from `samples` BFS traversals with
/// linear interpolation between integer hop counts (the SNAP convention,
/// which is what Table 1's fractional values like "4.7" use).
struct DiameterResult {
  double effective_90 = 0.0;   ///< interpolated 90% effective diameter
  std::uint32_t max_seen = 0;  ///< largest finite distance in the sample
  double mean_distance = 0.0;  ///< mean pairwise distance in the sample
};
DiameterResult effective_diameter(const Graph& g, std::size_t samples, std::uint64_t seed);

/// Average local clustering coefficient estimated over `samples` vertices.
double clustering_coefficient(const Graph& g, std::size_t samples, std::uint64_t seed);

// -- Reference (sequential, trusted) algorithm implementations -------------
// These are the oracles for the BSP engine's algorithm tests.

/// PageRank with uniform teleport; returns per-vertex score summing to ~1.
std::vector<double> reference_pagerank(const Graph& g, int iterations, double damping = 0.85);

/// Exact betweenness centrality (Brandes 2001) on the undirected unweighted
/// graph, optionally restricted to traversals rooted at `roots` (empty means
/// all vertices). Scores are *not* halved for undirectedness — the BSP
/// implementation uses the same convention so results compare exactly.
std::vector<double> reference_betweenness(const Graph& g,
                                          const std::vector<VertexId>& roots = {});

/// All-pairs shortest path lengths from each root (hop metric):
/// result[i] is the distance vector from roots[i].
std::vector<std::vector<std::uint32_t>> reference_apsp(const Graph& g,
                                                       const std::vector<VertexId>& roots);

/// Exact triangle count on the undirected simple graph (sorted-adjacency
/// intersection over oriented edges).
std::uint64_t reference_triangles(const Graph& g);

/// The vertex-induced subgraph on `vertices` (ids are compacted to [0, k) in
/// the order given; duplicate ids are rejected).
Graph induced_subgraph(const Graph& g, const std::vector<VertexId>& vertices);

/// The induced subgraph of the largest connected component (vertex ids
/// compacted ascending). The paper's algorithms assume a giant component;
/// this is the standard cleanup for datasets that lack one.
Graph largest_component_subgraph(const Graph& g);

}  // namespace pregel
