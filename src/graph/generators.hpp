// Synthetic graph generators.
//
// The paper evaluates on four SNAP datasets (SlashDot0922, web-Google,
// cit-Patents, LiveJournal). Those exact files are not redistributable inside
// this repository, so the benches run on *analogs*: synthetic graphs whose
// vertex/edge counts are the published values scaled by 1/10 and whose
// generator/parameters are chosen so the measured small-world statistics
// (average degree, 90% effective diameter ordering, heavy-tailed degrees)
// match the originals. See DESIGN.md §1 for the substitution argument and
// bench_table1_datasets for the regenerated Table 1.
//
// All generators are deterministic in (parameters, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pregel {

/// Erdős–Rényi G(n, m): exactly m distinct undirected edges.
Graph erdos_renyi(VertexId n, EdgeIndex m, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k neighbors per vertex
/// (k even), each edge rewired with probability beta. High clustering,
/// diameter tunable via beta — used for the higher-diameter analogs.
Graph watts_strogatz(VertexId n, std::uint32_t k, double beta, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches
/// `m_attach` edges to existing vertices chosen proportionally to degree.
/// Scale-free with very small diameter — used for the social-network analogs.
Graph barabasi_albert(VertexId n, std::uint32_t m_attach, std::uint64_t seed);

/// Citation-network generator (growing network with aging): vertices arrive
/// in id order; each new vertex cites `edges_per_vertex` older vertices,
/// drawn with probability `p_far` log-uniformly over the whole past (the
/// occasional seminal old patent — early vertices accumulate a moderately
/// enriched in-degree "old core") and otherwise uniformly from the last
/// `window` vertices (recency bias — patents mostly cite recent work).
/// The result has strong temporal locality: partitions of it are
/// id-contiguous, and every traversal funnels through the old core, which
/// is exactly the structure behind cit-Patents' partition-local activity
/// maximas in the paper's §VII.
Graph citation_graph(VertexId n, std::uint32_t edges_per_vertex, VertexId window,
                     double p_far, std::uint64_t seed);

/// Planted-partition (stochastic block model): `communities` equal-sized
/// groups over n vertices; each intra-community pair is an edge with
/// probability p_in, each inter-community pair with p_out << p_in. The
/// ground-truth community of vertex v is v / ceil(n/communities).
/// The standard benchmark for community-detection algorithms (label
/// propagation, semi-clustering).
Graph planted_partition(VertexId n, std::uint32_t communities, double p_in, double p_out,
                        std::uint64_t seed);

/// Ground-truth community of vertex v for a planted_partition graph.
std::uint32_t planted_community_of(VertexId v, VertexId n, std::uint32_t communities);

/// R-MAT / Kronecker-style recursive generator producing `m` distinct
/// undirected edges over 2^scale vertices (isolated vertices possible).
/// Probabilities (a, b, c, d) must sum to ~1; Graph500 uses
/// (0.57, 0.19, 0.19, 0.05).
struct RmatParams {
  std::uint32_t scale;
  EdgeIndex target_edges;
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  /// Per-level multiplicative noise on the quadrant probabilities, which
  /// avoids the perfectly self-similar degree artifacts of pure R-MAT.
  double noise = 0.10;
};
Graph rmat(const RmatParams& params, std::uint64_t seed);

// -- Deterministic shapes for tests and pathological baselines -------------

/// Path 0-1-2-...-(n-1): maximal diameter.
Graph path_graph(VertexId n);
/// Cycle of n vertices.
Graph ring_graph(VertexId n);
/// Star: vertex 0 connected to all others — the extreme supernode.
Graph star_graph(VertexId n);
/// sqrt(n) x sqrt(n) 4-neighbor torus-free grid (rows*cols vertices).
Graph grid_graph(VertexId rows, VertexId cols);
/// Complete graph K_n (tests only; quadratic).
Graph complete_graph(VertexId n);
/// Full binary tree with n vertices.
Graph binary_tree(VertexId n);

/// Apply a uniformly random permutation to the vertex ids. Generators like
/// Watts–Strogatz produce ids with near-perfect locality (the ring lattice),
/// which real datasets do not have; relabeling removes that artifact so
/// partitioning experiments are honest.
Graph relabel_vertices(const Graph& g, std::uint64_t seed);

// -- Dataset analogs (Table 1 of the paper, at `scale_div` reduction) ------

struct DatasetSpec {
  std::string short_name;   ///< "SD", "WG", "CP", "LJ"
  std::string full_name;    ///< paper's dataset name
  VertexId paper_vertices;  ///< published |V|
  EdgeIndex paper_edges;    ///< published |E|
  double paper_eff_diameter;  ///< published 90% effective diameter
};

/// The four datasets of Table 1 with their published statistics.
const std::vector<DatasetSpec>& paper_datasets();

/// Build the analog of a paper dataset at 1/scale_div size. The generator
/// family and parameters per dataset are fixed (documented in the .cpp) so
/// analogs are reproducible; `seed` perturbs only the random stream.
Graph dataset_analog(const std::string& short_name, unsigned scale_div = 10,
                     std::uint64_t seed = 2013);

}  // namespace pregel
