#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pregel {

namespace {

/// Canonical 64-bit key for an undirected vertex pair.
std::uint64_t pair_key(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Graph erdos_renyi(VertexId n, EdgeIndex m, std::uint64_t seed) {
  PREGEL_CHECK_MSG(n >= 2, "erdos_renyi: need at least 2 vertices");
  const auto max_edges = static_cast<EdgeIndex>(n) * (n - 1) / 2;
  PREGEL_CHECK_MSG(m <= max_edges, "erdos_renyi: more edges than pairs");
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  GraphBuilder b(n);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  Graph g = b.build();
  g.set_name("ER(n=" + std::to_string(n) + ",m=" + std::to_string(m) + ")");
  return g;
}

Graph watts_strogatz(VertexId n, std::uint32_t k, double beta, std::uint64_t seed) {
  PREGEL_CHECK_MSG(k % 2 == 0, "watts_strogatz: k must be even");
  PREGEL_CHECK_MSG(k >= 2 && k < n, "watts_strogatz: need 2 <= k < n");
  PREGEL_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "watts_strogatz: beta in [0,1]");
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(n) * k);
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.next_bool(beta)) {
        // Rewire to a uniformly random non-self, non-duplicate target.
        for (int tries = 0; tries < 32; ++tries) {
          const auto w = static_cast<VertexId>(rng.next_below(n));
          if (w != u && !seen.contains(pair_key(u, w))) {
            v = w;
            break;
          }
        }
      }
      if (v != u && seen.insert(pair_key(u, v)).second) b.add_edge(u, v);
    }
  }
  Graph g = b.build();
  g.set_name("WS(n=" + std::to_string(n) + ",k=" + std::to_string(k) + ")");
  return g;
}

Graph barabasi_albert(VertexId n, std::uint32_t m_attach, std::uint64_t seed) {
  PREGEL_CHECK_MSG(m_attach >= 1, "barabasi_albert: m_attach must be >= 1");
  PREGEL_CHECK_MSG(n > m_attach, "barabasi_albert: n must exceed m_attach");
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  // Endpoint pool: each arc endpoint appears once, so a uniform draw from the
  // pool is a degree-proportional draw over vertices.
  std::vector<VertexId> pool;
  pool.reserve(static_cast<std::size_t>(n) * m_attach * 2);

  // Seed with a small clique over the first m_attach+1 vertices.
  const VertexId m0 = m_attach + 1;
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      b.add_edge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  std::unordered_set<VertexId> picked;
  for (VertexId u = m0; u < n; ++u) {
    picked.clear();
    while (picked.size() < m_attach) {
      const VertexId t = pool[rng.next_below(pool.size())];
      picked.insert(t);
    }
    for (VertexId t : picked) {
      b.add_edge(u, t);
      pool.push_back(u);
      pool.push_back(t);
    }
  }
  Graph g = b.build();
  g.set_name("BA(n=" + std::to_string(n) + ",m=" + std::to_string(m_attach) + ")");
  return g;
}

Graph citation_graph(VertexId n, std::uint32_t edges_per_vertex, VertexId window,
                     double p_far, std::uint64_t seed) {
  PREGEL_CHECK_MSG(n >= 2, "citation_graph: need at least 2 vertices");
  PREGEL_CHECK_MSG(edges_per_vertex >= 1, "citation_graph: need >= 1 edge per vertex");
  PREGEL_CHECK_MSG(window >= 1, "citation_graph: window must be >= 1");
  PREGEL_CHECK_MSG(p_far >= 0.0 && p_far <= 1.0, "citation_graph: p_far in [0,1]");
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    for (std::uint32_t e = 0; e < edges_per_vertex; ++e) {
      VertexId target;
      if (rng.next_bool(p_far)) {
        // Log-uniform over the whole past: offsets concentrate near v but
        // with a heavy tail reaching the earliest vertices, whose in-degree
        // therefore accumulates into the "old core".
        const double log_off = rng.next_double() * std::log(static_cast<double>(v));
        const auto offset = static_cast<VertexId>(std::exp(log_off));
        target = v - std::min(std::max<VertexId>(offset, 1), v);
      } else {
        const VertexId w = std::min(window, v);
        target = v - 1 - static_cast<VertexId>(rng.next_below(w));
      }
      b.add_edge(v, target);
    }
  }
  Graph g = b.build();
  g.set_name("CIT(n=" + std::to_string(n) + ",k=" + std::to_string(edges_per_vertex) +
             ")");
  return g;
}

std::uint32_t planted_community_of(VertexId v, VertexId n, std::uint32_t communities) {
  const VertexId group = (n + communities - 1) / communities;
  return group == 0 ? 0 : v / group;
}

Graph planted_partition(VertexId n, std::uint32_t communities, double p_in, double p_out,
                        std::uint64_t seed) {
  PREGEL_CHECK_MSG(communities >= 1 && communities <= n,
                   "planted_partition: need 1 <= communities <= n");
  PREGEL_CHECK_MSG(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0,
                   "planted_partition: probabilities in [0,1]");
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  // Dense Bernoulli sweep over pairs. Intended for benchmark-sized graphs
  // (n up to a few tens of thousands); O(n^2) draws.
  for (VertexId u = 0; u < n; ++u) {
    const std::uint32_t cu = planted_community_of(u, n, communities);
    for (VertexId v = u + 1; v < n; ++v) {
      const double p = cu == planted_community_of(v, n, communities) ? p_in : p_out;
      if (p > 0.0 && rng.next_bool(p)) b.add_edge(u, v);
    }
  }
  Graph g = b.build();
  g.set_name("SBM(n=" + std::to_string(n) + ",k=" + std::to_string(communities) + ")");
  return g;
}

Graph rmat(const RmatParams& p, std::uint64_t seed) {
  PREGEL_CHECK_MSG(p.scale >= 1 && p.scale <= 31, "rmat: scale in [1,31]");
  const double psum = p.a + p.b + p.c + p.d;
  PREGEL_CHECK_MSG(std::abs(psum - 1.0) < 1e-6, "rmat: probabilities must sum to 1");
  const VertexId n = VertexId{1} << p.scale;
  const auto max_edges = static_cast<EdgeIndex>(n) * (n - 1) / 2;
  PREGEL_CHECK_MSG(p.target_edges <= max_edges / 2, "rmat: too many edges for scale");

  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(p.target_edges) * 2);
  GraphBuilder b(n);
  const EdgeIndex max_attempts = p.target_edges * 64;
  EdgeIndex attempts = 0;
  while (seen.size() < p.target_edges && attempts++ < max_attempts) {
    VertexId u = 0, v = 0;
    for (std::uint32_t level = 0; level < p.scale; ++level) {
      // Per-level noisy quadrant probabilities.
      const double na = p.a * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double nb = p.b * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double nc = p.c * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double nd = p.d * (1.0 + p.noise * (rng.next_double() - 0.5));
      const double r = rng.next_double() * (na + nb + nc + nd);
      u <<= 1;
      v <<= 1;
      if (r < na) {
        // top-left: no bits set
      } else if (r < na + nb) {
        v |= 1;
      } else if (r < na + nb + nc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  Graph g = b.build();
  g.set_name("RMAT(scale=" + std::to_string(p.scale) + ",m=" + std::to_string(seen.size()) +
             ")");
  return g;
}

Graph path_graph(VertexId n) {
  PREGEL_CHECK(n >= 1);
  GraphBuilder b(n);
  for (VertexId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  Graph g = b.build();
  g.set_name("path" + std::to_string(n));
  return g;
}

Graph ring_graph(VertexId n) {
  PREGEL_CHECK(n >= 3);
  GraphBuilder b(n);
  for (VertexId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  Graph g = b.build();
  g.set_name("ring" + std::to_string(n));
  return g;
}

Graph star_graph(VertexId n) {
  PREGEL_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexId i = 1; i < n; ++i) b.add_edge(0, i);
  Graph g = b.build();
  g.set_name("star" + std::to_string(n));
  return g;
}

Graph grid_graph(VertexId rows, VertexId cols) {
  PREGEL_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  Graph g = b.build();
  g.set_name("grid" + std::to_string(rows) + "x" + std::to_string(cols));
  return g;
}

Graph complete_graph(VertexId n) {
  PREGEL_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  Graph g = b.build();
  g.set_name("K" + std::to_string(n));
  return g;
}

Graph binary_tree(VertexId n) {
  PREGEL_CHECK(n >= 1);
  GraphBuilder b(n);
  for (VertexId i = 1; i < n; ++i) b.add_edge(i, (i - 1) / 2);
  Graph g = b.build();
  g.set_name("btree" + std::to_string(n));
  return g;
}

Graph relabel_vertices(const Graph& g, std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> perm(n);
  for (VertexId i = 0; i < n; ++i) perm[i] = i;
  Xoshiro256 rng(seed);
  for (VertexId i = n; i > 1; --i) std::swap(perm[i - 1], perm[rng.next_below(i)]);

  GraphBuilder b(n, g.undirected());
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.out_neighbors(v)) {
      if (g.undirected() && u < v) continue;
      b.add_edge(perm[v], perm[u]);
    }
  }
  Graph out = b.build();
  out.set_name(g.name().empty() ? "relabeled" : g.name() + "-relabeled");
  return out;
}

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> kSpecs = {
      {"SD", "SlashDot0922", 82'168, 948'464, 4.7},
      {"WG", "web-Google", 875'713, 5'105'039, 8.1},
      {"CP", "cit-Patents", 3'774'768, 16'518'948, 9.4},
      {"LJ", "LiveJournal", 4'847'571, 68'993'773, 6.5},
  };
  return kSpecs;
}

Graph dataset_analog(const std::string& short_name, unsigned scale_div, std::uint64_t seed) {
  PREGEL_CHECK_MSG(scale_div >= 1, "dataset_analog: scale_div must be >= 1");
  const DatasetSpec* spec = nullptr;
  for (const auto& s : paper_datasets())
    if (s.short_name == short_name) spec = &s;
  if (spec == nullptr)
    throw std::invalid_argument("dataset_analog: unknown dataset " + short_name);

  const auto n = static_cast<VertexId>(spec->paper_vertices / scale_div);
  const EdgeIndex m = spec->paper_edges / scale_div;

  Graph g;
  // Generator family per dataset, chosen to land near the published 90%
  // effective diameter (verified by bench_table1_datasets):
  //  - SD, LJ: dense social networks with hub structure and tiny diameter
  //    -> Barabási–Albert (diameter ~ log n / log log n).
  //  - WG, CP: sparser link/citation networks with noticeably larger
  //    effective diameter -> Watts–Strogatz with low rewiring probability
  //    (beta tuned per dataset), which preserves the long-tail distance
  //    profile BC/APSP traversals see.
  if (short_name == "SD") {
    const auto ma = static_cast<std::uint32_t>(
        std::max<EdgeIndex>(1, m / std::max<VertexId>(n, 1)));
    g = barabasi_albert(n, ma, seed);
  } else if (short_name == "LJ") {
    const auto ma = static_cast<std::uint32_t>(
        std::max<EdgeIndex>(1, m / std::max<VertexId>(n, 1)));
    g = barabasi_albert(n, ma, seed);
  } else if (short_name == "WG") {
    const auto k = static_cast<std::uint32_t>(
        2 * std::llround(static_cast<double>(m) / n));  // even, nearest
    g = relabel_vertices(watts_strogatz(n, std::max(2u, k), 0.13, seed), seed + 1);
  } else {  // CP
    // cit-Patents is a temporal citation network: patents cite mostly
    // recent work plus the occasional seminal old patent. The citation
    // generator reproduces the properties that drive the paper's §VII
    // analysis — effective diameter ~9.4, a streaming cut far worse than
    // METIS's, and traversals that funnel through "eras", concentrating
    // activity in id-contiguous (METIS-like) partitions. Ids stay in
    // temporal order, as patent numbers do in the real dataset.
    const auto k = static_cast<std::uint32_t>(m / n);
    const VertexId recency_window = std::max<VertexId>(n / 150, 50);
    g = citation_graph(n, std::max(1u, k), recency_window, 0.03, seed);
  }
  g.set_name(short_name + "-analog/" + std::to_string(scale_div));
  return g;
}

}  // namespace pregel
