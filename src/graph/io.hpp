// Graph serialization: SNAP-style whitespace edge lists (the format the
// paper's datasets ship in) and a compact binary format used by the simulated
// blob store. Both round-trip through Graph.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace pregel {

/// Parse a SNAP-style edge list: one "src dst" pair per line, '#' comments
/// and blank lines ignored. Vertex ids may be sparse; they are compacted to
/// a dense [0, n) space in first-appearance order. Throws std::runtime_error
/// on malformed input.
Graph read_edge_list(std::istream& in, bool undirected = true);
Graph read_edge_list_file(const std::string& path, bool undirected = true);

/// Write "src dst" per arc (undirected graphs emit each edge once, with
/// src < dst).
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Compact binary encoding (magic + header + CSR arrays, little-endian).
/// This is what workers "download from blob storage" in the simulation.
std::vector<std::byte> serialize_graph(const Graph& g);
Graph deserialize_graph(const std::vector<std::byte>& bytes);

/// METIS graph-file format (the format the paper's METIS partitioner
/// consumes): first line "n m [fmt]", then one line per vertex listing its
/// neighbors as 1-BASED ids. Only the unweighted variant (fmt absent or
/// "000"/"0") is supported; weighted inputs are rejected.
Graph read_metis(std::istream& in);
Graph read_metis_file(const std::string& path);
void write_metis(const Graph& g, std::ostream& out);
void write_metis_file(const Graph& g, const std::string& path);

}  // namespace pregel
