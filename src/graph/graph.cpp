#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"
#include "util/units.hpp"

namespace pregel {

std::string Graph::summary() const {
  std::string s = "n=" + format_count(n_) + " m=" + format_count(num_edges());
  s += undirected_ ? " (undirected)" : " (directed)";
  if (!name_.empty()) s = name_ + ": " + s;
  return s;
}

Graph Graph::transposed() const {
  if (undirected_) return *this;
  GraphBuilder b(n_, /*undirected=*/false);
  b.keep_duplicates();  // transpose preserves multiplicity; input is simple anyway
  b.keep_self_loops();
  for (VertexId v = 0; v < n_; ++v)
    for (VertexId u : out_neighbors(v)) b.add_edge(u, v);
  Graph t = b.build();
  t.set_name(name_.empty() ? "" : name_ + "-T");
  return t;
}

GraphBuilder::GraphBuilder(VertexId num_vertices, bool undirected)
    : n_(num_vertices), undirected_(undirected) {}

GraphBuilder& GraphBuilder::add_edge(VertexId src, VertexId dst) {
  if (src >= n_ || dst >= n_)
    throw std::invalid_argument("GraphBuilder::add_edge: vertex id out of range");
  edges_.push_back({src, dst});
  return *this;
}

GraphBuilder& GraphBuilder::add_edges(std::span<const Edge> edges) {
  for (const Edge& e : edges) add_edge(e.src, e.dst);
  return *this;
}

Graph GraphBuilder::build() {
  std::vector<Edge> arcs;
  arcs.reserve(edges_.size() * (undirected_ ? 2 : 1));
  for (const Edge& e : edges_) {
    if (drop_loops_ && e.src == e.dst) continue;
    arcs.push_back(e);
    if (undirected_) arcs.push_back({e.dst, e.src});
  }
  edges_.clear();
  edges_.shrink_to_fit();

  if (dedupe_) {
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  } else {
    std::sort(arcs.begin(), arcs.end());
  }

  Graph g;
  g.n_ = n_;
  g.undirected_ = undirected_;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  g.adj_.resize(arcs.size());
  for (const Edge& e : arcs) ++g.offsets_[e.src + 1];
  for (std::size_t i = 1; i <= n_; ++i) g.offsets_[i] += g.offsets_[i - 1];
  PREGEL_DCHECK(g.offsets_[n_] == arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) g.adj_[i] = arcs[i].dst;
  return g;
}

}  // namespace pregel
