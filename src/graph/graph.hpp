// Immutable CSR graph — the in-memory representation every other module
// consumes. Vertices are dense 32-bit ids [0, n); edges are stored as a
// compressed sparse row structure of out-neighbors. The paper's algorithms
// (BC, APSP, PageRank on SNAP social/web graphs) treat graphs as unweighted;
// we keep the representation unweighted and let algorithms attach per-edge
// state through their message types.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace pregel {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// A directed edge in builder form.
struct Edge {
  VertexId src;
  VertexId dst;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable out-neighbor CSR graph.
///
/// Construction goes through GraphBuilder (or the generators). The structure
/// may represent a directed graph or a symmetrized (undirected) one; the
/// `undirected()` flag records which, and symmetrized graphs store each
/// undirected edge as two arcs.
class Graph {
 public:
  Graph() = default;

  VertexId num_vertices() const noexcept { return n_; }
  /// Number of stored arcs (for undirected graphs this is 2x the number of
  /// undirected edges).
  EdgeIndex num_arcs() const noexcept { return static_cast<EdgeIndex>(adj_.size()); }
  /// Logical edge count: arcs for directed graphs, arcs/2 for undirected.
  EdgeIndex num_edges() const noexcept { return undirected_ ? num_arcs() / 2 : num_arcs(); }
  bool undirected() const noexcept { return undirected_; }
  bool empty() const noexcept { return n_ == 0; }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }
  std::uint32_t out_degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  double average_degree() const noexcept {
    return n_ == 0 ? 0.0 : static_cast<double>(num_arcs()) / static_cast<double>(n_);
  }

  /// Modeled in-memory footprint of the structure (used by the cloud memory
  /// meter to charge each worker for its partition of the graph).
  Bytes memory_footprint() const noexcept {
    return static_cast<Bytes>(offsets_.capacity() * sizeof(EdgeIndex) +
                              adj_.capacity() * sizeof(VertexId));
  }

  /// Human-readable one-liner: "n=82,168 m=948,464 (undirected)".
  std::string summary() const;

  /// Reverse of every arc; an undirected graph transposes to itself
  /// (returned by value — the copy is intentional and cheap relative to use).
  Graph transposed() const;

  /// A name tag for reports ("WG-analog" etc.); empty by default.
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  friend class GraphBuilder;

  VertexId n_ = 0;
  bool undirected_ = false;
  std::vector<EdgeIndex> offsets_;  // size n_+1
  std::vector<VertexId> adj_;       // size num_arcs()
  std::string name_;
};

/// Accumulates edges, then produces a CSR Graph.
///
/// Duplicate arcs and self-loops are removed by default (SNAP-style social
/// graphs are simple graphs; BC/APSP assume simple traversal).
class GraphBuilder {
 public:
  /// `num_vertices` fixes the id space [0, n). Edges referencing ids >= n are
  /// rejected with std::invalid_argument at add time.
  explicit GraphBuilder(VertexId num_vertices, bool undirected = true);

  GraphBuilder& add_edge(VertexId src, VertexId dst);
  GraphBuilder& add_edges(std::span<const Edge> edges);

  VertexId num_vertices() const noexcept { return n_; }
  std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Keep duplicate arcs / self loops (off by default).
  GraphBuilder& keep_duplicates(bool keep = true) {
    dedupe_ = !keep;
    return *this;
  }
  GraphBuilder& keep_self_loops(bool keep = true) {
    drop_loops_ = !keep;
    return *this;
  }

  /// Build consumes the accumulated edges (builder resets to empty).
  Graph build();

 private:
  VertexId n_;
  bool undirected_;
  bool dedupe_ = true;
  bool drop_loops_ = true;
  std::vector<Edge> edges_;
};

}  // namespace pregel
