#include "sched/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace pregel::sched {

namespace {

/// Fixed-format modeled seconds for the event log: the log is asserted
/// verbatim by the determinism tests, so formatting must not depend on
/// locale or stream state.
std::string fmt_s(Seconds t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Queue policies.

std::size_t FairSharePolicy::pick(std::span<const QueuedJobView> queued) const {
  std::size_t best = npos;
  for (std::size_t i = 0; i < queued.size(); ++i) {
    if (best == npos) {
      best = i;
      continue;
    }
    const QueuedJobView& a = queued[i];
    const QueuedJobView& b = queued[best];
    if (a.user_service != b.user_service) {
      if (a.user_service < b.user_service) best = i;
    } else if (a.spec->arrival != b.spec->arrival) {
      if (a.spec->arrival < b.spec->arrival) best = i;
    } else if (a.id < b.id) {
      best = i;
    }
  }
  return best;
}

std::size_t PriorityPolicy::pick(std::span<const QueuedJobView> queued) const {
  std::size_t best = npos;
  for (std::size_t i = 0; i < queued.size(); ++i) {
    if (best == npos) {
      best = i;
      continue;
    }
    const QueuedJobView& a = queued[i];
    const QueuedJobView& b = queued[best];
    if (a.spec->priority != b.spec->priority) {
      if (a.spec->priority > b.spec->priority) best = i;
    } else if (a.spec->arrival != b.spec->arrival) {
      if (a.spec->arrival < b.spec->arrival) best = i;
    } else if (a.id < b.id) {
      best = i;
    }
  }
  return best;
}

std::size_t PriorityPolicy::victim(const QueuedJobView& incoming,
                                   std::span<const RunningJobView> running) const {
  std::size_t best = npos;
  for (std::size_t i = 0; i < running.size(); ++i) {
    if (running[i].spec->priority >= incoming.spec->priority) continue;
    if (best == npos) {
      best = i;
      continue;
    }
    const RunningJobView& a = running[i];
    const RunningJobView& b = running[best];
    if (a.spec->priority != b.spec->priority) {
      if (a.spec->priority < b.spec->priority) best = i;
    } else if (a.admitted_at != b.admitted_at) {
      if (a.admitted_at > b.admitted_at) best = i;  // evict the youngest
    } else if (a.id > b.id) {
      best = i;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// JobScheduler.

JobScheduler::JobScheduler(SchedulerOptions opts)
    : opts_(std::move(opts)),
      cost_(opts_.cost),
      policy_(opts_.policy ? opts_.policy : std::make_shared<FairSharePolicy>()),
      free_vms_(static_cast<std::int64_t>(opts_.pool_vms)) {
  PREGEL_CHECK_MSG(opts_.pool_vms >= 1, "JobScheduler: need >= 1 pool VM");
  pool_.policy = policy_->name();
  pool_.pool_vms = opts_.pool_vms;
}

JobScheduler::~JobScheduler() = default;

std::uint64_t JobScheduler::submit(JobSpec spec, std::unique_ptr<ScheduledJob> job) {
  PREGEL_CHECK_MSG(!ran_, "JobScheduler: submit after run_all");
  PREGEL_CHECK_MSG(job != nullptr, "JobScheduler: null job");
  Rec rec;
  rec.id = recs_.size();
  rec.spec = std::move(spec);
  rec.job = std::move(job);
  recs_.push_back(std::move(rec));
  ++pool_.jobs_submitted;
  return recs_.back().id;
}

double& JobScheduler::service_of(const std::string& user) {
  for (auto& [name, s] : service_)
    if (name == user) return s;
  service_.emplace_back(user, 0.0);
  return service_.back().second;
}

void JobScheduler::log_event(Seconds t, const std::string& what) {
  log_.push_back("t=" + fmt_s(t) + " " + what);
}

Seconds JobScheduler::manifest_transfer_time() const {
  const double bw_Bps =
      opts_.vm.network_bps * cost_.params().network_efficiency / 8.0;
  return static_cast<double>(opts_.manifest_bytes) / bw_Bps +
         cost_.params().queue_op_latency;
}

void JobScheduler::charge_overhead(std::uint32_t vms, Seconds t) {
  overhead_meter_.charge(opts_.vm, vms, t);
  pool_.preemption_overhead += t;
}

void JobScheduler::release_arrivals(Seconds now) {
  for (Rec& rec : recs_) {
    if (rec.state != State::kPending || rec.spec.arrival > now) continue;
    const std::uint32_t w = rec.job->initial_workers();
    if (w > opts_.pool_vms) {
      rec.state = State::kRejected;
      rec.completed_at = now;
      ++pool_.jobs_rejected;
      log_event(now, "reject job " + std::to_string(rec.id) + " (" + rec.spec.name +
                         "): needs " + std::to_string(w) + " VMs, pool has " +
                         std::to_string(opts_.pool_vms));
      continue;
    }
    // Budget admission floor: a budget that cannot buy the requested fleet
    // one modeled second could never finish setup, let alone a superstep.
    const Usd floor = static_cast<double>(w) * opts_.vm.price_per_hour / 3600.0;
    if (rec.spec.budget_usd > 0.0 && rec.spec.budget_usd < floor) {
      rec.state = State::kRejected;
      rec.completed_at = now;
      ++pool_.jobs_rejected;
      log_event(now, "reject job " + std::to_string(rec.id) + " (" + rec.spec.name +
                         "): budget below admission floor");
      continue;
    }
    rec.state = State::kQueued;
    log_event(now, "queue job " + std::to_string(rec.id) + " (" + rec.spec.name +
                       "): " + std::to_string(w) + " VMs, user " + rec.spec.user);
  }
}

bool JobScheduler::admit(Rec& rec, Seconds now) {
  const std::uint32_t w = rec.job->initial_workers();
  rec.state = State::kRunning;
  rec.vms_held = w;
  rec.workers_peak = std::max(rec.workers_peak, w);
  free_vms_ -= w;
  if (!rec.started) {
    rec.started = true;
    rec.admitted_at = now;
    rec.wait += now - rec.spec.arrival;
    rec.clock = now;
    log_event(now, "admit job " + std::to_string(rec.id) + " (" + rec.spec.name +
                       ") on " + std::to_string(w) + " VMs");
    const Seconds before = rec.job->modeled_time();
    const bool ok = rec.job->start();
    rec.clock += rec.job->modeled_time() - before;
    service_of(rec.spec.user) += (rec.job->modeled_time() - before) * w;
    if (!ok) {
      finish_job(rec, State::kFailed);
      return false;
    }
    return true;
  }
  // Resume from preemption: the standby reloads the persisted manifest; the
  // reload rides the pool's modeled planes and is charged to the pool, not
  // to the job (its own metrics must match the solo run).
  PREGEL_CHECK_MSG(rec.manager.has_manifest(),
                   "JobScheduler: resuming a job with no persisted manifest");
  const Seconds reload = manifest_transfer_time();
  charge_overhead(w, reload);
  ++pool_.resumes;
  rec.wait += now - rec.clock;
  rec.clock = now + reload;
  log_event(now, "resume job " + std::to_string(rec.id) + " (" + rec.spec.name +
                     ") on " + std::to_string(w) + " VMs at superstep " +
                     std::to_string(rec.job->current_superstep()));
  return true;
}

void JobScheduler::preempt(Rec& rec, Seconds now) {
  // Persist the manifest through the job's durable JobManager, exactly the
  // blob a standby manager would resume from; the write is priced like the
  // reload on resume. The engine object keeps the full in-memory state, so
  // resuming later replays nothing and changes nothing.
  rec.manager.persist(rec.job->manifest());
  const Seconds persist = manifest_transfer_time();
  charge_overhead(rec.vms_held, persist);
  free_vms_ += rec.vms_held;
  log_event(now, "preempt job " + std::to_string(rec.id) + " (" + rec.spec.name +
                     "): manifest persisted at superstep " +
                     std::to_string(rec.job->current_superstep()) + ", freed " +
                     std::to_string(rec.vms_held) + " VMs");
  rec.vms_held = 0;
  rec.state = State::kQueued;
  rec.clock = std::max(rec.clock, now + persist);
  ++rec.preemptions;
  ++pool_.preemptions;
}

void JobScheduler::try_admit(Seconds now) {
  for (;;) {
    std::vector<QueuedJobView> queued;
    std::vector<std::size_t> queued_idx;
    for (std::size_t i = 0; i < recs_.size(); ++i) {
      Rec& rec = recs_[i];
      if (rec.state != State::kQueued) continue;
      // A preempted job's manifest persist may still be in flight; it is
      // not eligible again until its local clock catches up to the pool.
      if (rec.started && rec.clock > now) continue;
      queued.push_back({rec.id, &rec.spec, rec.job->initial_workers(),
                        service_of(rec.spec.user)});
      queued_idx.push_back(i);
    }
    if (queued.empty()) return;
    const std::size_t picked = policy_->pick(queued);
    if (picked == QueuePolicy::npos) return;
    Rec& rec = recs_[queued_idx[picked]];
    const std::uint32_t w = rec.job->initial_workers();

    if (free_vms_ < static_cast<std::int64_t>(w) && opts_.allow_preemption) {
      // Ask the policy for victims until the fleet fits or it declines.
      while (free_vms_ < static_cast<std::int64_t>(w)) {
        std::vector<RunningJobView> running;
        std::vector<std::size_t> running_idx;
        for (std::size_t i = 0; i < recs_.size(); ++i) {
          Rec& r = recs_[i];
          if (r.state != State::kRunning) continue;
          running.push_back(
              {r.id, &r.spec, r.vms_held, r.admitted_at, service_of(r.spec.user)});
          running_idx.push_back(i);
        }
        if (running.empty()) break;
        const std::size_t v = policy_->victim(queued[picked], running);
        if (v == QueuePolicy::npos) break;
        preempt(recs_[running_idx[v]], now);
      }
    }
    if (free_vms_ < static_cast<std::int64_t>(w)) return;  // head-of-line waits
    if (!admit(rec, now)) continue;  // died in setup; capacity already freed
  }
}

void JobScheduler::reclaim_capacity(Rec& rec) {
  const std::uint32_t w_now = rec.job->current_workers();
  if (w_now < rec.vms_held) {
    const std::uint32_t freed = rec.vms_held - w_now;
    free_vms_ += freed;
    rec.scale_ins += freed;
    pool_.scale_ins += freed;
    log_event(rec.clock, "scale-in job " + std::to_string(rec.id) + " (" +
                             rec.spec.name + "): returned " + std::to_string(freed) +
                             " VM(s) to the pool");
    rec.vms_held = w_now;
  } else if (w_now > rec.vms_held) {
    // Job-own elasticity grew the fleet (governor scale-out or a scaling
    // policy). The growth is a deterministic job-own decision the scheduler
    // must honor to keep the run bit-identical to solo; it may transiently
    // oversubscribe the pool, bounded by in-flight growth, and admission
    // stays closed until capacity is positive again.
    const std::uint32_t grew = w_now - rec.vms_held;
    free_vms_ -= grew;
    log_event(rec.clock, "scale-out job " + std::to_string(rec.id) + " (" +
                             rec.spec.name + "): took " + std::to_string(grew) +
                             " VM(s) from the pool");
    rec.vms_held = w_now;
    rec.workers_peak = std::max(rec.workers_peak, w_now);
  }
}

void JobScheduler::step(Rec& rec) {
  const Seconds before = rec.job->modeled_time();
  const bool more = rec.job->advance();
  const Seconds delta = rec.job->modeled_time() - before;
  rec.clock += delta;
  service_of(rec.spec.user) += delta * rec.vms_held;
  reclaim_capacity(rec);

  if (rec.spec.budget_usd > 0.0 && rec.job->cost_so_far() > rec.spec.budget_usd) {
    rec.job->fail("budget exhausted: " + std::to_string(rec.job->cost_so_far()) +
                  " USD spent against a ceiling of " +
                  std::to_string(rec.spec.budget_usd) + " USD");
    finish_job(rec, State::kFailed);
    return;
  }
  if (!more) {
    rec.job->finish();
    finish_job(rec, rec.job->report().failed ? State::kFailed : State::kDone);
  }
}

void JobScheduler::finish_job(Rec& rec, State terminal) {
  free_vms_ += rec.vms_held;
  rec.vms_held = 0;
  rec.state = terminal;
  rec.completed_at = rec.clock;
  if (terminal == State::kDone) {
    ++pool_.jobs_completed;
    log_event(rec.clock, "complete job " + std::to_string(rec.id) + " (" +
                             rec.spec.name + "): " +
                             std::to_string(rec.job->current_superstep()) +
                             " supersteps");
  } else {
    ++pool_.jobs_failed;
    log_event(rec.clock, "fail job " + std::to_string(rec.id) + " (" + rec.spec.name +
                             "): " + rec.job->report().failure_reason);
  }
}

void JobScheduler::run_all() {
  PREGEL_CHECK_MSG(!ran_, "JobScheduler: run_all called twice");
  ran_ = true;

  Seconds now = 0.0;
  for (;;) {
    release_arrivals(now);
    try_admit(now);

    // Next event: the earliest running job's slice end, or the next arrival,
    // whichever is sooner (ties: arrivals first, then lowest job id).
    constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
    Seconds next_arrival = kInf;
    for (const Rec& rec : recs_)
      if (rec.state == State::kPending) next_arrival = std::min(next_arrival, rec.spec.arrival);

    Rec* next_run = nullptr;
    for (Rec& rec : recs_)
      if (rec.state == State::kRunning &&
          (next_run == nullptr || rec.clock < next_run->clock))
        next_run = &rec;

    if (next_run == nullptr) {
      if (next_arrival < kInf) {
        now = std::max(now, next_arrival);
        continue;
      }
      // Nothing running, nothing arriving. Any job still queued is a
      // preempted job whose manifest persist is settling — advance the
      // clock to it; a fresh queued job with the whole pool free would have
      // been admitted above.
      Seconds next_ready = kInf;
      for (const Rec& rec : recs_)
        if (rec.state == State::kQueued) next_ready = std::min(next_ready, rec.clock);
      if (next_ready < kInf && next_ready > now) {
        now = next_ready;
        continue;
      }
      break;
    }
    if (next_arrival <= next_run->clock) {
      now = std::max(now, next_arrival);
      continue;
    }
    now = next_run->clock;
    step(*next_run);
  }

  finalize_metrics();
}

void JobScheduler::finalize_metrics() {
  Seconds first_arrival = 0.0, last_completion = 0.0;
  bool any = false;
  Seconds busy_vm_seconds = 0.0;
  for (Rec& rec : recs_) {
    JobRow row;
    row.id = rec.id;
    row.name = rec.spec.name;
    row.user = rec.spec.user;
    row.state = rec.state == State::kDone     ? "done"
                : rec.state == State::kFailed ? "failed"
                                              : "rejected";
    row.arrival = rec.spec.arrival;
    row.admitted = rec.started ? rec.admitted_at : 0.0;
    row.completed = rec.completed_at;
    row.wait_time = rec.wait;
    row.preemptions = rec.preemptions;
    row.scale_ins = rec.scale_ins;
    row.workers_peak = rec.workers_peak;
    row.deadline = rec.spec.deadline;
    // A deadline is missed unless the job finished successfully by it:
    // late completions, failures, and rejections all count (a rejected job
    // with a deadline certainly did not meet it).
    row.missed_deadline =
        rec.spec.deadline > 0.0 &&
        (rec.state != State::kDone || rec.completed_at > rec.spec.deadline);
    if (row.missed_deadline) ++pool_.deadline_misses;
    if (rec.started) {
      const JobReport& rep = rec.job->report();
      row.run_time = rep.metrics.total_time;
      row.cost_usd = rep.metrics.cost_usd;
      row.supersteps = rep.metrics.total_supersteps();
      row.workers_final = rec.job->current_workers();
      pool_.total_cost_usd += rep.metrics.cost_usd;
      pool_.vm_seconds += rep.metrics.vm_seconds;
      busy_vm_seconds += rep.metrics.vm_seconds;
    }
    pool_.total_wait += rec.wait;
    if (rec.state == State::kDone || rec.state == State::kFailed) {
      if (!any) {
        first_arrival = rec.spec.arrival;
        any = true;
      }
      first_arrival = std::min(first_arrival, rec.spec.arrival);
      last_completion = std::max(last_completion, rec.completed_at);
    }
    rows_.push_back(std::move(row));
  }
  pool_.total_cost_usd += overhead_meter_.total_usd();
  pool_.vm_seconds += overhead_meter_.total_vm_seconds();
  pool_.makespan = any ? last_completion - first_arrival : 0.0;
  if (pool_.makespan > 0.0 && pool_.total_cost_usd > 0.0)
    pool_.jobs_per_hour_per_usd = static_cast<double>(pool_.jobs_completed) /
                                  (pool_.makespan / 3600.0) / pool_.total_cost_usd;
  if (pool_.makespan > 0.0 && opts_.pool_vms > 0)
    pool_.pool_utilization =
        busy_vm_seconds / (static_cast<double>(opts_.pool_vms) * pool_.makespan);
}

const JobReport& JobScheduler::report(std::uint64_t id) const {
  PREGEL_CHECK_MSG(id < recs_.size(), "JobScheduler: unknown job id");
  PREGEL_CHECK_MSG(recs_[id].started, "JobScheduler: job never admitted");
  return recs_[id].job->report();
}

}  // namespace pregel::sched
