// Type-erased job handle for the multi-job scheduler (docs/SCHEDULER.md).
//
// Engine<Program> is a template; the pool is not. TypedJob<Program> wraps an
// engine plus its JobOptions/JobResult behind the small virtual surface the
// scheduler drives between slices: start / advance / finish, plus read-only
// accessors for admission control (budget, fleet size), capacity reclaim
// (current_workers after the scale-in rung fires), and preemption (the
// manifest a cloud::JobManager persists while the job sits off the pool).
//
// The wrapper owns nothing the engine does not already model: pausing a job
// between advance() calls touches no engine state, so every value, modeled
// time, and metric stays bit-identical to running the job alone.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "cloud/manager.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"

namespace pregel::sched {

/// What a user submits alongside the job itself: identity for fair-share
/// accounting, urgency for the priority queue, a modeled submission time,
/// and the per-job spend ceiling admission control enforces.
struct JobSpec {
  std::string name;
  std::string user = "default";
  /// Higher = more urgent (PriorityPolicy only; FairShare ignores it).
  std::uint32_t priority = 0;
  /// Modeled pool time at which the job arrives in the queue.
  Seconds arrival = 0.0;
  /// Spend ceiling: 0 = unlimited. A running job whose modeled cost crosses
  /// it is terminated; a job whose budget cannot buy its fleet one modeled
  /// second is refused at admission.
  Usd budget_usd = 0.0;
  /// Completion target. Observable, not enforced: a job with a deadline that
  /// does not finish by it (late, failed, or rejected) sets
  /// JobRow::missed_deadline and counts toward PoolMetrics::deadline_misses;
  /// no admission or preemption policy acts on it yet.
  Seconds deadline = 0.0;
};

/// The scheduler's view of one admitted engine. One slice == one advance()
/// call == one superstep attempt (including recovery/rewind replays).
class ScheduledJob {
 public:
  virtual ~ScheduledJob() = default;

  /// Validate + reset + modeled setup. False = the job died during setup
  /// (e.g. graph blob unreadable); finish() still collects the report.
  virtual bool start() = 0;
  /// One superstep slice. True = the job wants another slice.
  virtual bool advance() = 0;
  /// Collect final values and cost totals into the report.
  virtual void finish() = 0;
  /// Terminate the job from outside (budget exhaustion): collects partial
  /// state, then marks the report failed with `reason`.
  virtual void fail(std::string reason) = 0;

  virtual const JobReport& report() const = 0;
  /// VMs the job's cluster starts with (what admission must reserve).
  virtual std::uint32_t initial_workers() const = 0;
  /// VMs the job currently holds; drops when the scale-in rung retires one.
  virtual std::uint32_t current_workers() const = 0;
  virtual std::uint64_t current_superstep() const = 0;
  virtual Usd cost_so_far() const = 0;
  virtual Seconds vm_seconds_so_far() const = 0;
  /// Modeled job time so far (setup + spans + recovery); the scheduler's
  /// event clock advances by the per-slice delta of this.
  virtual Seconds modeled_time() const = 0;
  /// Manifest persisted via cloud::JobManager when this job is preempted.
  virtual cloud::ManagerManifest manifest() const = 0;
};

template <VertexProgramT Program>
class TypedJob final : public ScheduledJob {
 public:
  /// The graph and partitioning must outlive the job (same contract as
  /// Engine). The cluster's initial_workers is the fleet admission reserves.
  TypedJob(const Graph& graph, Program program, ClusterConfig cluster,
           const Partitioning& partitioning, JobOptions opts)
      : initial_workers_(cluster.initial_workers),
        engine_(graph, std::move(program), std::move(cluster), partitioning),
        opts_(std::move(opts)) {}

  bool start() override { return engine_.start(opts_, result_); }
  bool advance() override {
    return engine_.advance(result_) == Engine<Program>::StepStatus::kRunning;
  }
  void finish() override { engine_.finish(result_); }
  void fail(std::string reason) override {
    engine_.finish(result_);
    result_.failed = true;
    result_.failure_reason = std::move(reason);
  }

  const JobReport& report() const override { return result_; }
  std::uint32_t initial_workers() const override { return initial_workers_; }
  std::uint32_t current_workers() const override { return engine_.current_workers(); }
  std::uint64_t current_superstep() const override {
    return engine_.current_superstep();
  }
  Usd cost_so_far() const override { return engine_.cost_so_far(); }
  Seconds vm_seconds_so_far() const override { return engine_.vm_seconds_so_far(); }
  Seconds modeled_time() const override { return result_.metrics.total_time; }
  cloud::ManagerManifest manifest() const override {
    return engine_.preemption_manifest();
  }

  /// Typed access to the finished result (values included) for callers that
  /// know the program — the bit-identity tests compare these against solo
  /// runs of the same engine configuration.
  const JobResult<Program>& result() const { return result_; }

 private:
  std::uint32_t initial_workers_;  ///< captured before the cluster moves
  Engine<Program> engine_;
  JobOptions opts_;
  JobResult<Program> result_;
};

}  // namespace pregel::sched
