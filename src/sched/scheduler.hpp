// Multi-job cluster scheduler: admits a stream of heterogeneous BSP jobs
// onto a shared VM pool (docs/SCHEDULER.md).
//
// The scheduler is a discrete-event simulation in modeled time, layered on
// the engine's re-entrant slice API (Engine::start/advance/finish). Admitted
// jobs space-share the pool — each holds a disjoint set of VMs — and the
// event loop always advances the running job whose local clock is earliest
// (ties broken by job id), so the interleaving is a pure function of modeled
// state. Nothing the scheduler does touches engine internals between slices:
// queue wait, preemption manifests, and resume latencies are priced into
// pool-level metrics only, which is what keeps every admitted job's values,
// modeled times, and JobMetrics bit-identical to running it alone on a
// dedicated pool.
//
// Admission control checks pool capacity (the job's initial_workers must fit
// the free VMs) and the per-job budget (a budget that cannot buy the fleet
// one modeled second is refused outright; a running job that crosses its
// ceiling is terminated). Queue order is a pluggable policy: FairShare picks
// the queued job whose user has consumed the least VM-seconds, Priority
// picks the most urgent and may preempt strictly-lower-priority running jobs
// — the victim's manifest is persisted via cloud::JobManager and the job
// resumes later, bit-identically, because the engine object itself retains
// its (deterministic) state. The scale-in rung returns capacity mid-job: the
// scheduler polls current_workers() after every slice and hands retired VMs
// to queued jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cloud/cost_model.hpp"
#include "cloud/manager.hpp"
#include "cloud/vm.hpp"
#include "runtime/metrics.hpp"
#include "sched/job.hpp"

namespace pregel::sched {

/// Queue-policy view of one queued job.
struct QueuedJobView {
  std::uint64_t id = 0;
  const JobSpec* spec = nullptr;
  /// VMs the job needs (initial_workers of its cluster).
  std::uint32_t workers = 0;
  /// VM-seconds this job's user has consumed so far (fair-share signal).
  double user_service = 0.0;
};

/// Queue-policy view of one running job (preemption-victim selection).
struct RunningJobView {
  std::uint64_t id = 0;
  const JobSpec* spec = nullptr;
  std::uint32_t workers_held = 0;
  Seconds admitted_at = 0.0;
  double user_service = 0.0;
};

/// Pluggable queue discipline. Implementations must be deterministic pure
/// functions of their arguments: equal inputs, equal picks — the admission
/// and preemption order is part of the scheduler's reproducibility contract.
class QueuePolicy {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  virtual ~QueuePolicy() = default;
  virtual const char* name() const noexcept = 0;
  /// Index of the queued job to try admitting next, or npos for "none".
  virtual std::size_t pick(std::span<const QueuedJobView> queued) const = 0;
  /// Index of a running job to preempt so `incoming` can fit, or npos for
  /// "never preempt". Called repeatedly until capacity suffices or npos.
  virtual std::size_t victim(const QueuedJobView& incoming,
                             std::span<const RunningJobView> running) const = 0;
};

/// Least-service-first: admit the queued job whose user has consumed the
/// fewest VM-seconds; ties break by arrival time, then job id. Never
/// preempts — fairness is enforced at admission, not by eviction.
class FairSharePolicy final : public QueuePolicy {
 public:
  const char* name() const noexcept override { return "fair-share"; }
  std::size_t pick(std::span<const QueuedJobView> queued) const override;
  std::size_t victim(const QueuedJobView&,
                     std::span<const RunningJobView>) const override {
    return npos;
  }
};

/// Strict priority: admit the most urgent queued job (ties by arrival time,
/// then job id); when it cannot fit, evict the running job with the lowest
/// priority strictly below the incoming one (ties: latest admission, then
/// highest id), repeatedly until the fleet fits or no victim qualifies.
class PriorityPolicy final : public QueuePolicy {
 public:
  const char* name() const noexcept override { return "priority"; }
  std::size_t pick(std::span<const QueuedJobView> queued) const override;
  std::size_t victim(const QueuedJobView& incoming,
                     std::span<const RunningJobView> running) const override;
};

struct SchedulerOptions {
  /// VMs in the shared pool. A job needing more is rejected outright.
  std::uint32_t pool_vms = 8;
  /// VM type the pool is built from (prices preemption overheads; each job
  /// additionally prices its own compute through its cluster's VmSpec).
  cloud::VmSpec vm = cloud::azure_large_2012();
  /// Shared cost model pricing the scheduler's own control traffic
  /// (manifest persist on preempt, manifest reload on resume).
  cloud::CostParams cost;
  /// Queue discipline; null = FairSharePolicy.
  std::shared_ptr<QueuePolicy> policy;
  /// Master switch for policy-driven preemption.
  bool allow_preemption = true;
  /// Modeled size of a persisted preemption manifest.
  Bytes manifest_bytes = 64 * 1024;
};

/// One scheduler instance drives one batch of submitted jobs to completion.
class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions opts);
  ~JobScheduler();
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Submit a job (before run_all). Returns the job id admission, event-log
  /// lines, and rows() refer to. Submission order breaks all remaining ties.
  std::uint64_t submit(JobSpec spec, std::unique_ptr<ScheduledJob> job);

  /// Drive every submitted job to a terminal state. Deterministic: the
  /// event log, rows, and pool metrics are pure functions of the submitted
  /// jobs and options.
  void run_all();

  const PoolMetrics& pool() const noexcept { return pool_; }
  const std::vector<JobRow>& rows() const noexcept { return rows_; }
  /// Human-readable admission/preemption/completion trail, one line per
  /// scheduling event — the determinism tests assert it verbatim.
  const std::vector<std::string>& event_log() const noexcept { return log_; }
  /// The (finished) report of job `id`.
  const JobReport& report(std::uint64_t id) const;

 private:
  enum class State {
    kPending,    ///< submitted, arrival time not reached
    kQueued,     ///< in the admission queue (fresh or preempted)
    kRunning,    ///< holds VMs, receives slices
    kDone,
    kFailed,
    kRejected,
  };

  struct Rec {
    std::uint64_t id = 0;
    JobSpec spec;
    std::unique_ptr<ScheduledJob> job;
    State state = State::kPending;
    bool started = false;        ///< engine setup has run
    std::uint32_t vms_held = 0;
    std::uint32_t workers_peak = 0;
    Seconds admitted_at = 0.0;   ///< first admission
    Seconds clock = 0.0;         ///< pool time at which its last slice ended
    Seconds completed_at = 0.0;
    Seconds wait = 0.0;          ///< queued + preempted time
    std::uint32_t preemptions = 0;
    std::uint32_t scale_ins = 0;
    cloud::JobManager manager;   ///< durable preemption manifests
  };

  void release_arrivals(Seconds now);
  void try_admit(Seconds now);
  bool admit(Rec& rec, Seconds now);
  void preempt(Rec& rec, Seconds now);
  void step(Rec& rec);
  void finish_job(Rec& rec, State terminal);
  void reclaim_capacity(Rec& rec);
  Seconds manifest_transfer_time() const;
  void charge_overhead(std::uint32_t vms, Seconds t);
  double& service_of(const std::string& user);
  void log_event(Seconds t, const std::string& what);
  void finalize_metrics();

  SchedulerOptions opts_;
  cloud::CostModel cost_;
  cloud::CostMeter overhead_meter_;
  std::shared_ptr<QueuePolicy> policy_;
  std::vector<Rec> recs_;            ///< by submission order; id == index
  std::vector<std::pair<std::string, double>> service_;  ///< per-user VM-seconds
  std::int64_t free_vms_ = 0;
  bool ran_ = false;
  PoolMetrics pool_;
  std::vector<JobRow> rows_;
  std::vector<std::string> log_;
};

}  // namespace pregel::sched
