# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
