file(REMOVE_RECURSE
  "CMakeFiles/test_algos.dir/algos/test_algos.cpp.o"
  "CMakeFiles/test_algos.dir/algos/test_algos.cpp.o.d"
  "CMakeFiles/test_algos.dir/algos/test_algos_extended.cpp.o"
  "CMakeFiles/test_algos.dir/algos/test_algos_extended.cpp.o.d"
  "CMakeFiles/test_algos.dir/algos/test_semi_clustering.cpp.o"
  "CMakeFiles/test_algos.dir/algos/test_semi_clustering.cpp.o.d"
  "test_algos"
  "test_algos.pdb"
  "test_algos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
