
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloud/test_cloud.cpp" "tests/CMakeFiles/test_cloud.dir/cloud/test_cloud.cpp.o" "gcc" "tests/CMakeFiles/test_cloud.dir/cloud/test_cloud.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/pregel_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pregel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
