file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/test_analysis.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_analysis.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_citation.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_citation.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_generators.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_generators.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_graph.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_graph.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_io.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_io.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_sbm_metis.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_sbm_metis.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_subgraph.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_subgraph.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
