
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/partition/test_partition_properties.cpp" "tests/CMakeFiles/test_partition.dir/partition/test_partition_properties.cpp.o" "gcc" "tests/CMakeFiles/test_partition.dir/partition/test_partition_properties.cpp.o.d"
  "/root/repo/tests/partition/test_partitioners.cpp" "tests/CMakeFiles/test_partition.dir/partition/test_partitioners.cpp.o" "gcc" "tests/CMakeFiles/test_partition.dir/partition/test_partitioners.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/pregel_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pregel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pregel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
