
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_aggregates.cpp" "tests/CMakeFiles/test_engine.dir/core/test_aggregates.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_aggregates.cpp.o.d"
  "/root/repo/tests/core/test_engine.cpp" "tests/CMakeFiles/test_engine.dir/core/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_engine.cpp.o.d"
  "/root/repo/tests/core/test_engine_edge_cases.cpp" "tests/CMakeFiles/test_engine.dir/core/test_engine_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_engine_edge_cases.cpp.o.d"
  "/root/repo/tests/core/test_engine_properties.cpp" "tests/CMakeFiles/test_engine.dir/core/test_engine_properties.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_engine_properties.cpp.o.d"
  "/root/repo/tests/core/test_fault_tolerance.cpp" "tests/CMakeFiles/test_engine.dir/core/test_fault_tolerance.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_fault_tolerance.cpp.o.d"
  "/root/repo/tests/core/test_gas.cpp" "tests/CMakeFiles/test_engine.dir/core/test_gas.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_gas.cpp.o.d"
  "/root/repo/tests/core/test_placement.cpp" "tests/CMakeFiles/test_engine.dir/core/test_placement.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_placement.cpp.o.d"
  "/root/repo/tests/core/test_policies_extended.cpp" "tests/CMakeFiles/test_engine.dir/core/test_policies_extended.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_policies_extended.cpp.o.d"
  "/root/repo/tests/core/test_swath.cpp" "tests/CMakeFiles/test_engine.dir/core/test_swath.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/core/test_swath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pregel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/pregel_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pregel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/pregel_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pregel_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pregel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
