file(REMOVE_RECURSE
  "CMakeFiles/test_engine.dir/core/test_aggregates.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_aggregates.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_engine.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_engine.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_engine_edge_cases.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_engine_edge_cases.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_engine_properties.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_engine_properties.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_fault_tolerance.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_fault_tolerance.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_gas.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_gas.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_placement.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_placement.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_policies_extended.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_policies_extended.cpp.o.d"
  "CMakeFiles/test_engine.dir/core/test_swath.cpp.o"
  "CMakeFiles/test_engine.dir/core/test_swath.cpp.o.d"
  "test_engine"
  "test_engine.pdb"
  "test_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
