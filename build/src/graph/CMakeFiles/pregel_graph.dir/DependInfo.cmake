
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analysis.cpp" "src/graph/CMakeFiles/pregel_graph.dir/analysis.cpp.o" "gcc" "src/graph/CMakeFiles/pregel_graph.dir/analysis.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/pregel_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/pregel_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/pregel_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/pregel_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/pregel_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/pregel_graph.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pregel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
