file(REMOVE_RECURSE
  "CMakeFiles/pregel_graph.dir/analysis.cpp.o"
  "CMakeFiles/pregel_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/pregel_graph.dir/generators.cpp.o"
  "CMakeFiles/pregel_graph.dir/generators.cpp.o.d"
  "CMakeFiles/pregel_graph.dir/graph.cpp.o"
  "CMakeFiles/pregel_graph.dir/graph.cpp.o.d"
  "CMakeFiles/pregel_graph.dir/io.cpp.o"
  "CMakeFiles/pregel_graph.dir/io.cpp.o.d"
  "libpregel_graph.a"
  "libpregel_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
