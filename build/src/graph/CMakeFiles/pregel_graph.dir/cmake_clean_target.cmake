file(REMOVE_RECURSE
  "libpregel_graph.a"
)
