# Empty compiler generated dependencies file for pregel_graph.
# This may be replaced when dependencies are built.
