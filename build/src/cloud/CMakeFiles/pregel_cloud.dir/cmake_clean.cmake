file(REMOVE_RECURSE
  "CMakeFiles/pregel_cloud.dir/blob.cpp.o"
  "CMakeFiles/pregel_cloud.dir/blob.cpp.o.d"
  "CMakeFiles/pregel_cloud.dir/cost_model.cpp.o"
  "CMakeFiles/pregel_cloud.dir/cost_model.cpp.o.d"
  "CMakeFiles/pregel_cloud.dir/elasticity.cpp.o"
  "CMakeFiles/pregel_cloud.dir/elasticity.cpp.o.d"
  "CMakeFiles/pregel_cloud.dir/network.cpp.o"
  "CMakeFiles/pregel_cloud.dir/network.cpp.o.d"
  "CMakeFiles/pregel_cloud.dir/placement.cpp.o"
  "CMakeFiles/pregel_cloud.dir/placement.cpp.o.d"
  "CMakeFiles/pregel_cloud.dir/queue.cpp.o"
  "CMakeFiles/pregel_cloud.dir/queue.cpp.o.d"
  "CMakeFiles/pregel_cloud.dir/vm.cpp.o"
  "CMakeFiles/pregel_cloud.dir/vm.cpp.o.d"
  "libpregel_cloud.a"
  "libpregel_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
