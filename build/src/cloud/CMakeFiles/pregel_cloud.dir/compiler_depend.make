# Empty compiler generated dependencies file for pregel_cloud.
# This may be replaced when dependencies are built.
