
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/blob.cpp" "src/cloud/CMakeFiles/pregel_cloud.dir/blob.cpp.o" "gcc" "src/cloud/CMakeFiles/pregel_cloud.dir/blob.cpp.o.d"
  "/root/repo/src/cloud/cost_model.cpp" "src/cloud/CMakeFiles/pregel_cloud.dir/cost_model.cpp.o" "gcc" "src/cloud/CMakeFiles/pregel_cloud.dir/cost_model.cpp.o.d"
  "/root/repo/src/cloud/elasticity.cpp" "src/cloud/CMakeFiles/pregel_cloud.dir/elasticity.cpp.o" "gcc" "src/cloud/CMakeFiles/pregel_cloud.dir/elasticity.cpp.o.d"
  "/root/repo/src/cloud/network.cpp" "src/cloud/CMakeFiles/pregel_cloud.dir/network.cpp.o" "gcc" "src/cloud/CMakeFiles/pregel_cloud.dir/network.cpp.o.d"
  "/root/repo/src/cloud/placement.cpp" "src/cloud/CMakeFiles/pregel_cloud.dir/placement.cpp.o" "gcc" "src/cloud/CMakeFiles/pregel_cloud.dir/placement.cpp.o.d"
  "/root/repo/src/cloud/queue.cpp" "src/cloud/CMakeFiles/pregel_cloud.dir/queue.cpp.o" "gcc" "src/cloud/CMakeFiles/pregel_cloud.dir/queue.cpp.o.d"
  "/root/repo/src/cloud/vm.cpp" "src/cloud/CMakeFiles/pregel_cloud.dir/vm.cpp.o" "gcc" "src/cloud/CMakeFiles/pregel_cloud.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pregel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
