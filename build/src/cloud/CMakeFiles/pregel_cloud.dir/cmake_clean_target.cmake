file(REMOVE_RECURSE
  "libpregel_cloud.a"
)
