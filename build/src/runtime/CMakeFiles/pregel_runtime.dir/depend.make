# Empty dependencies file for pregel_runtime.
# This may be replaced when dependencies are built.
