file(REMOVE_RECURSE
  "CMakeFiles/pregel_runtime.dir/metrics.cpp.o"
  "CMakeFiles/pregel_runtime.dir/metrics.cpp.o.d"
  "CMakeFiles/pregel_runtime.dir/metrics_io.cpp.o"
  "CMakeFiles/pregel_runtime.dir/metrics_io.cpp.o.d"
  "libpregel_runtime.a"
  "libpregel_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
