file(REMOVE_RECURSE
  "libpregel_runtime.a"
)
