file(REMOVE_RECURSE
  "CMakeFiles/pregel_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/pregel_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/pregel_util.dir/csv.cpp.o"
  "CMakeFiles/pregel_util.dir/csv.cpp.o.d"
  "CMakeFiles/pregel_util.dir/histogram.cpp.o"
  "CMakeFiles/pregel_util.dir/histogram.cpp.o.d"
  "CMakeFiles/pregel_util.dir/log.cpp.o"
  "CMakeFiles/pregel_util.dir/log.cpp.o.d"
  "CMakeFiles/pregel_util.dir/rng.cpp.o"
  "CMakeFiles/pregel_util.dir/rng.cpp.o.d"
  "CMakeFiles/pregel_util.dir/stats.cpp.o"
  "CMakeFiles/pregel_util.dir/stats.cpp.o.d"
  "CMakeFiles/pregel_util.dir/units.cpp.o"
  "CMakeFiles/pregel_util.dir/units.cpp.o.d"
  "libpregel_util.a"
  "libpregel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
