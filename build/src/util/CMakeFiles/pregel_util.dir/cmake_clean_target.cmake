file(REMOVE_RECURSE
  "libpregel_util.a"
)
