# Empty compiler generated dependencies file for pregel_util.
# This may be replaced when dependencies are built.
