
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_plot.cpp" "src/util/CMakeFiles/pregel_util.dir/ascii_plot.cpp.o" "gcc" "src/util/CMakeFiles/pregel_util.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/pregel_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/pregel_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/util/CMakeFiles/pregel_util.dir/histogram.cpp.o" "gcc" "src/util/CMakeFiles/pregel_util.dir/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/pregel_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/pregel_util.dir/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/pregel_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/pregel_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/pregel_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/pregel_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/util/CMakeFiles/pregel_util.dir/units.cpp.o" "gcc" "src/util/CMakeFiles/pregel_util.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
