file(REMOVE_RECURSE
  "CMakeFiles/pregel_partition.dir/multilevel.cpp.o"
  "CMakeFiles/pregel_partition.dir/multilevel.cpp.o.d"
  "CMakeFiles/pregel_partition.dir/partitioner.cpp.o"
  "CMakeFiles/pregel_partition.dir/partitioner.cpp.o.d"
  "CMakeFiles/pregel_partition.dir/quality.cpp.o"
  "CMakeFiles/pregel_partition.dir/quality.cpp.o.d"
  "CMakeFiles/pregel_partition.dir/streaming.cpp.o"
  "CMakeFiles/pregel_partition.dir/streaming.cpp.o.d"
  "libpregel_partition.a"
  "libpregel_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
