file(REMOVE_RECURSE
  "libpregel_partition.a"
)
