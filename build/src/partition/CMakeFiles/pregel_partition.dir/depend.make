# Empty dependencies file for pregel_partition.
# This may be replaced when dependencies are built.
