# Empty compiler generated dependencies file for pregel_core.
# This may be replaced when dependencies are built.
