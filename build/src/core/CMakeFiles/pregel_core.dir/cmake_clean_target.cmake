file(REMOVE_RECURSE
  "libpregel_core.a"
)
