file(REMOVE_RECURSE
  "CMakeFiles/pregel_core.dir/config.cpp.o"
  "CMakeFiles/pregel_core.dir/config.cpp.o.d"
  "CMakeFiles/pregel_core.dir/swath.cpp.o"
  "CMakeFiles/pregel_core.dir/swath.cpp.o.d"
  "libpregel_core.a"
  "libpregel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
