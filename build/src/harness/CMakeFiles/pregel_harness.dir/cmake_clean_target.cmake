file(REMOVE_RECURSE
  "libpregel_harness.a"
)
