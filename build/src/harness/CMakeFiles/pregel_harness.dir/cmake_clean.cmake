file(REMOVE_RECURSE
  "CMakeFiles/pregel_harness.dir/experiment.cpp.o"
  "CMakeFiles/pregel_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/pregel_harness.dir/swath_search.cpp.o"
  "CMakeFiles/pregel_harness.dir/swath_search.cpp.o.d"
  "libpregel_harness.a"
  "libpregel_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
