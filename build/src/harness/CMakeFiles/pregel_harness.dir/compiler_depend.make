# Empty compiler generated dependencies file for pregel_harness.
# This may be replaced when dependencies are built.
