# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_pagerank "/root/repo/build/examples/pregel_cli" "--algo=pagerank" "--graph=ba:500,3" "--iters=5")
set_tests_properties(example_cli_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_bc_swath "/root/repo/build/examples/pregel_cli" "--algo=bc" "--graph=ws:400,4,20" "--roots=4" "--swath=adaptive")
set_tests_properties(example_cli_bc_swath PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_triangles "/root/repo/build/examples/pregel_cli" "--algo=triangles" "--graph=er:300,900")
set_tests_properties(example_cli_triangles PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_usage_error "/root/repo/build/examples/pregel_cli" "--algo=bogus")
set_tests_properties(example_cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
