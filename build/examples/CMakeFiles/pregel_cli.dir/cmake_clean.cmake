file(REMOVE_RECURSE
  "CMakeFiles/pregel_cli.dir/pregel_cli.cpp.o"
  "CMakeFiles/pregel_cli.dir/pregel_cli.cpp.o.d"
  "pregel_cli"
  "pregel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
