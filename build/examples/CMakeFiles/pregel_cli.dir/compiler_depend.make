# Empty compiler generated dependencies file for pregel_cli.
# This may be replaced when dependencies are built.
