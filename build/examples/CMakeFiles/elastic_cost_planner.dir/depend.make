# Empty dependencies file for elastic_cost_planner.
# This may be replaced when dependencies are built.
