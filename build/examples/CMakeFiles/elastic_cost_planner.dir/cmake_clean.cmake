file(REMOVE_RECURSE
  "CMakeFiles/elastic_cost_planner.dir/elastic_cost_planner.cpp.o"
  "CMakeFiles/elastic_cost_planner.dir/elastic_cost_planner.cpp.o.d"
  "elastic_cost_planner"
  "elastic_cost_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_cost_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
