# Empty dependencies file for partition_advisor.
# This may be replaced when dependencies are built.
