file(REMOVE_RECURSE
  "CMakeFiles/partition_advisor.dir/partition_advisor.cpp.o"
  "CMakeFiles/partition_advisor.dir/partition_advisor.cpp.o.d"
  "partition_advisor"
  "partition_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
