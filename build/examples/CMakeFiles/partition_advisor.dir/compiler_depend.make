# Empty compiler generated dependencies file for partition_advisor.
# This may be replaced when dependencies are built.
