file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_run.dir/fault_tolerant_run.cpp.o"
  "CMakeFiles/fault_tolerant_run.dir/fault_tolerant_run.cpp.o.d"
  "fault_tolerant_run"
  "fault_tolerant_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
