# Empty compiler generated dependencies file for fault_tolerant_run.
# This may be replaced when dependencies are built.
