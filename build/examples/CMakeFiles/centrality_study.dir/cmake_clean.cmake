file(REMOVE_RECURSE
  "CMakeFiles/centrality_study.dir/centrality_study.cpp.o"
  "CMakeFiles/centrality_study.dir/centrality_study.cpp.o.d"
  "centrality_study"
  "centrality_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
