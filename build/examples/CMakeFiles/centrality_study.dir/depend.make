# Empty dependencies file for centrality_study.
# This may be replaced when dependencies are built.
