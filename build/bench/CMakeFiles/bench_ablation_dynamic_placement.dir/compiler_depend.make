# Empty compiler generated dependencies file for bench_ablation_dynamic_placement.
# This may be replaced when dependencies are built.
