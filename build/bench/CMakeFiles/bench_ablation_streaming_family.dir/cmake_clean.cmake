file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_streaming_family.dir/bench_ablation_streaming_family.cpp.o"
  "CMakeFiles/bench_ablation_streaming_family.dir/bench_ablation_streaming_family.cpp.o.d"
  "bench_ablation_streaming_family"
  "bench_ablation_streaming_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_streaming_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
