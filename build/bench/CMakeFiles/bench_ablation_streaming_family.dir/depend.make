# Empty dependencies file for bench_ablation_streaming_family.
# This may be replaced when dependencies are built.
