file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_worker_scaling.dir/bench_ablation_worker_scaling.cpp.o"
  "CMakeFiles/bench_ablation_worker_scaling.dir/bench_ablation_worker_scaling.cpp.o.d"
  "bench_ablation_worker_scaling"
  "bench_ablation_worker_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_worker_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
