# Empty dependencies file for bench_ablation_worker_scaling.
# This may be replaced when dependencies are built.
