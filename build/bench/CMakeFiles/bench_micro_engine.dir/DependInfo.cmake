
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_engine.cpp" "bench/CMakeFiles/bench_micro_engine.dir/bench_micro_engine.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_engine.dir/bench_micro_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/pregel_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pregel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pregel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/pregel_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pregel_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pregel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
