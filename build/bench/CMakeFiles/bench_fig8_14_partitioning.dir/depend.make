# Empty dependencies file for bench_fig8_14_partitioning.
# This may be replaced when dependencies are built.
