file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_14_partitioning.dir/bench_fig8_14_partitioning.cpp.o"
  "CMakeFiles/bench_fig8_14_partitioning.dir/bench_fig8_14_partitioning.cpp.o.d"
  "bench_fig8_14_partitioning"
  "bench_fig8_14_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_14_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
