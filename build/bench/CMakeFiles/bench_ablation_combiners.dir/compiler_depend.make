# Empty compiler generated dependencies file for bench_ablation_combiners.
# This may be replaced when dependencies are built.
