file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_combiners.dir/bench_ablation_combiners.cpp.o"
  "CMakeFiles/bench_ablation_combiners.dir/bench_ablation_combiners.cpp.o.d"
  "bench_ablation_combiners"
  "bench_ablation_combiners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_combiners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
