# Empty compiler generated dependencies file for bench_fig4_swath_size_speedup.
# This may be replaced when dependencies are built.
