file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_swath_size_speedup.dir/bench_fig4_swath_size_speedup.cpp.o"
  "CMakeFiles/bench_fig4_swath_size_speedup.dir/bench_fig4_swath_size_speedup.cpp.o.d"
  "bench_fig4_swath_size_speedup"
  "bench_fig4_swath_size_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_swath_size_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
