# Empty compiler generated dependencies file for bench_fig15_16_elastic.
# This may be replaced when dependencies are built.
