file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_16_elastic.dir/bench_fig15_16_elastic.cpp.o"
  "CMakeFiles/bench_fig15_16_elastic.dir/bench_fig15_16_elastic.cpp.o.d"
  "bench_fig15_16_elastic"
  "bench_fig15_16_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_16_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
