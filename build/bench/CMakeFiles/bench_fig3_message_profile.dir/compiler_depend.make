# Empty compiler generated dependencies file for bench_fig3_message_profile.
# This may be replaced when dependencies are built.
