file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_thrash_sensitivity.dir/bench_ablation_thrash_sensitivity.cpp.o"
  "CMakeFiles/bench_ablation_thrash_sensitivity.dir/bench_ablation_thrash_sensitivity.cpp.o.d"
  "bench_ablation_thrash_sensitivity"
  "bench_ablation_thrash_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thrash_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
