# Empty dependencies file for bench_ablation_thrash_sensitivity.
# This may be replaced when dependencies are built.
