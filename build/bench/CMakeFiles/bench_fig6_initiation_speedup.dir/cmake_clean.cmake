file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_initiation_speedup.dir/bench_fig6_initiation_speedup.cpp.o"
  "CMakeFiles/bench_fig6_initiation_speedup.dir/bench_fig6_initiation_speedup.cpp.o.d"
  "bench_fig6_initiation_speedup"
  "bench_fig6_initiation_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_initiation_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
