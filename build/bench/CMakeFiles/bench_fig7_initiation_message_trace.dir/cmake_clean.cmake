file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_initiation_message_trace.dir/bench_fig7_initiation_message_trace.cpp.o"
  "CMakeFiles/bench_fig7_initiation_message_trace.dir/bench_fig7_initiation_message_trace.cpp.o.d"
  "bench_fig7_initiation_message_trace"
  "bench_fig7_initiation_message_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_initiation_message_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
