# Empty dependencies file for bench_fig7_initiation_message_trace.
# This may be replaced when dependencies are built.
