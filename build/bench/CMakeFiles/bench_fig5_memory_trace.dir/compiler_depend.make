# Empty compiler generated dependencies file for bench_fig5_memory_trace.
# This may be replaced when dependencies are built.
