file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_app_runtimes.dir/bench_fig2_app_runtimes.cpp.o"
  "CMakeFiles/bench_fig2_app_runtimes.dir/bench_fig2_app_runtimes.cpp.o.d"
  "bench_fig2_app_runtimes"
  "bench_fig2_app_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_app_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
