# Empty dependencies file for bench_fig2_app_runtimes.
# This may be replaced when dependencies are built.
